package dataflow_test

import (
	"math/rand"
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/dataflow"
	"pathslice/internal/modref"
)

// bruteWrittenBetween enumerates simple paths (with bounded revisits)
// from src to dst and collects variables written on any of them —
// the reference semantics for WrBt.
func bruteWrittenBetween(prog *cfa.Program, al *alias.Info, mr *modref.Info, src, dst *cfa.Loc) map[string]struct{} {
	out := make(map[string]struct{})
	visits := make(map[int]int)
	var walk func(l *cfa.Loc, writes []string)
	record := func(writes []string) {
		for _, w := range writes {
			out[w] = struct{}{}
		}
	}
	walk = func(l *cfa.Loc, writes []string) {
		if l == dst {
			record(writes)
			// Keep exploring: longer paths may write more. (dst may be
			// revisited through loops.)
		}
		for _, e := range l.Out {
			if visits[e.ID] >= 2 {
				continue
			}
			visits[e.ID]++
			var w []string
			switch e.Op.Kind {
			case cfa.OpAssign:
				w = al.WrittenVars(e.Op.LHS)
			case cfa.OpCall:
				w = mr.ModsVars(e.Op.Callee)
			}
			walk(e.Dst, append(writes, w...))
			visits[e.ID]--
		}
	}
	walk(src, nil)
	return out
}

// bruteBy checks By.pcStep by enumerating paths from pc to the exit
// avoiding pcStep.
func bruteBy(fn *cfa.CFA, pc, pcStep *cfa.Loc) bool {
	seen := make(map[*cfa.Loc]bool)
	var walk func(l *cfa.Loc) bool
	walk = func(l *cfa.Loc) bool {
		if l == pcStep {
			return false
		}
		if l == fn.Exit {
			return true
		}
		if seen[l] {
			return false
		}
		seen[l] = true
		for _, e := range l.Out {
			if walk(e.Dst) {
				return true
			}
		}
		return false
	}
	return pc != pcStep && walk(pc)
}

var bruteSources = []string{
	`int a; int b;
	 void main() {
		a = 1;
		if (a > 0) { b = 2; } else { a = 3; }
		while (b < 5) { b = b + 1; }
		a = b;
	 }`,
	`int x; int y; int *p;
	 void sub() { y = 7; }
	 void main() {
		p = &x;
		*p = 1;
		sub();
		if (x == y) { x = 0; }
	 }`,
	`int n; int s;
	 void main() {
		s = 0;
		for (int i = 0; i < n; i = i + 1) {
			if (i % 2 == 0) { s = s + i; } else { skip; }
		}
		if (s > 10) { error; }
	 }`,
}

// TestWrBtAgainstBruteForce cross-checks the fixpoint-based
// WrittenBetween against path enumeration on random location pairs.
func TestWrBtAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for si, src := range bruteSources {
		prog := compile.MustSource(src)
		al := alias.Analyze(prog)
		mr := modref.Analyze(prog, al)
		df := dataflow.Analyze(prog, al, mr)
		main := prog.Funcs["main"]
		for trial := 0; trial < 40; trial++ {
			a := main.Locs[r.Intn(len(main.Locs))]
			b := main.Locs[r.Intn(len(main.Locs))]
			got := df.MustWrittenBetween(a, b)
			want := bruteWrittenBetween(prog, al, mr, a, b)
			// The fixpoint answer must be a superset of any brute-force
			// finding (brute force bounds revisits) and must not invent
			// variables never written on a connecting path.
			for w := range want {
				if _, ok := got[w]; !ok {
					t.Errorf("src %d, %v->%v: missing %s (got %v, want ⊇ %v)", si, a, b, w, got, want)
				}
			}
			// Exactness check: with revisit bound 2 the brute force sees
			// every edge that lies on some connecting walk, so the sets
			// must be equal for these loop-simple programs.
			for g := range got {
				if _, ok := want[g]; !ok {
					t.Errorf("src %d, %v->%v: extra %s (got %v, want %v)", si, a, b, g, got, want)
				}
			}
		}
	}
}

// TestByAgainstBruteForce cross-checks By with explicit path search.
func TestByAgainstBruteForce(t *testing.T) {
	for si, src := range bruteSources {
		prog := compile.MustSource(src)
		al := alias.Analyze(prog)
		mr := modref.Analyze(prog, al)
		df := dataflow.Analyze(prog, al, mr)
		main := prog.Funcs["main"]
		for _, pc := range main.Locs {
			for _, step := range main.Locs {
				got := df.MustBy(pc, step)
				want := bruteBy(main, pc, step)
				if got != want {
					t.Errorf("src %d: By(%v, %v) = %v, want %v", si, pc, step, got, want)
				}
			}
		}
	}
}
