// Package dataflow implements the intraprocedural relations the path
// slicer queries (§4.1 of the paper):
//
//   - In.pc / Out.pc: the CFA edges that can reach / be reached from a
//     location, computed as least fixpoints;
//   - WrBt.(pc, pc').L: whether some lvalue of L may be written on a
//     path from pc to pc' (edges in Out.pc ∩ In.pc', with call edges
//     contributing their callees' Mods sets);
//   - By.pc: the locations that can bypass pc, i.e. reach the function
//     exit without visiting pc;
//   - postdominators (used by the static-slicing baseline and tests).
//
// All queries are intraprocedural: the slicer always "takes" call edges
// precisely so that every (pc, pc') query stays within one CFA (§4.1).
package dataflow

import (
	"fmt"
	"sync"

	"pathslice/internal/alias"
	"pathslice/internal/bitset"
	"pathslice/internal/cfa"
	"pathslice/internal/modref"
)

// CrossCFAError reports a query whose two locations belong to
// different CFAs — the one precondition every intraprocedural query
// has. It is a typed error (not a panic) so callers on degraded paths
// can answer conservatively instead of crashing; the Must* variants
// keep the old panicking behavior for tests and invariant-checked
// call sites.
type CrossCFAError struct {
	Query    string // "WrBt", "By", ...
	Src, Dst string // the offending locations, rendered
}

// Error describes the cross-CFA violation.
func (e *CrossCFAError) Error() string {
	return fmt.Sprintf("dataflow: %s across CFAs: %s vs %s", e.Query, e.Src, e.Dst)
}

// crossCFA builds the typed error for a query over locs a and b.
func crossCFA(query string, a, b *cfa.Loc) error {
	return &CrossCFAError{Query: query, Src: a.String(), Dst: b.String()}
}

// Info answers WrBt/By/postdominance queries for a whole program.
type Info struct {
	prog  *cfa.Program
	alias *alias.Info
	mods  *modref.Info
	fns   map[string]*fnInfo

	// mu guards the lazily-populated query caches (wrBtCache, byCache,
	// postdom) and the Stats counters, making a single Info safe to
	// share across goroutines.
	mu sync.Mutex

	// Stats counts analysis work for the ablation benchmarks. It is
	// updated under mu; read it only when no queries are in flight, or
	// through Snapshot.
	Stats Stats
}

// Stats counts the queries answered and fixpoints computed.
type Stats struct {
	WrBtQueries    int
	ByQueries      int
	WrBtCacheMiss  int
	ByCacheMiss    int
	FixpointPasses int
}

type fnInfo struct {
	fn *cfa.CFA
	// out[loc.Index] = edges reachable from loc (by edge Index).
	out []*bitset.Set
	// in[loc.Index] = edges that can reach loc.
	in []*bitset.Set
	// writes[edge.Index] = concrete variables the edge may write.
	writes []map[string]struct{}
	// wrBtCache caches the union of written variables between location
	// pairs, keyed by srcIndex*nLocs + dstIndex.
	wrBtCache map[int]map[string]struct{}
	// byCache caches By.pc as a location-index set, keyed by pc.Index.
	byCache map[int]*bitset.Set
	// postdom[i] = set of locations postdominating location i
	// (computed lazily).
	postdom []*bitset.Set
}

// Snapshot returns a consistent copy of the Stats counters.
func (info *Info) Snapshot() Stats {
	info.mu.Lock()
	defer info.mu.Unlock()
	return info.Stats
}

// Analyze computes the per-function reachability fixpoints. The
// returned Info is safe for concurrent use: every lazily-computed cache
// (written-between sets, bypass sets, postdominators) and the Stats
// counters are guarded by one mutex, and everything else is immutable
// after Analyze returns.
func Analyze(prog *cfa.Program, al *alias.Info, mr *modref.Info) *Info {
	info := &Info{prog: prog, alias: al, mods: mr, fns: make(map[string]*fnInfo)}
	for _, name := range prog.Order {
		info.fns[name] = info.analyzeFn(prog.Funcs[name])
	}
	return info
}

func (info *Info) analyzeFn(fn *cfa.CFA) *fnInfo {
	n := len(fn.Locs)
	m := len(fn.Edges)
	fi := &fnInfo{
		fn:        fn,
		out:       make([]*bitset.Set, n),
		in:        make([]*bitset.Set, n),
		writes:    make([]map[string]struct{}, m),
		wrBtCache: make(map[int]map[string]struct{}),
		byCache:   make(map[int]*bitset.Set),
	}
	for i := 0; i < n; i++ {
		fi.out[i] = bitset.New(m)
		fi.in[i] = bitset.New(m)
	}
	for _, e := range fn.Edges {
		w := make(map[string]struct{})
		switch e.Op.Kind {
		case cfa.OpAssign:
			for _, v := range info.alias.WrittenVars(e.Op.LHS) {
				w[v] = struct{}{}
			}
		case cfa.OpCall, cfa.OpSpawn:
			// The spawned thread's writes may land anywhere after the
			// spawn point, so the spawn edge conservatively carries the
			// callee's whole mod set, like a call edge.
			for v := range info.mods.ModsVarSet(e.Op.Callee) {
				w[v] = struct{}{}
			}
		}
		fi.writes[e.Index] = w
	}

	// Out.pc: least fixpoint of Out.pc = ∪_{e:(pc,·,pc')} {e} ∪ Out.pc'.
	// Iterate in reverse postorder-ish sweeps until stable.
	changed := true
	for changed {
		changed = false
		info.Stats.FixpointPasses++
		for i := m - 1; i >= 0; i-- {
			e := fn.Edges[i]
			src := fi.out[e.Src.Index]
			before := src.Count()
			src.Add(e.Index)
			src.UnionWith(fi.out[e.Dst.Index])
			if src.Count() != before {
				changed = true
			}
		}
	}
	// In.pc: least fixpoint of In.pc = ∪_{e:(pc',·,pc)} {e} ∪ In.pc'.
	changed = true
	for changed {
		changed = false
		info.Stats.FixpointPasses++
		for i := 0; i < m; i++ {
			e := fn.Edges[i]
			dst := fi.in[e.Dst.Index]
			before := dst.Count()
			dst.Add(e.Index)
			dst.UnionWith(fi.in[e.Src.Index])
			if dst.Count() != before {
				changed = true
			}
		}
	}
	return fi
}

func (info *Info) fnOf(loc *cfa.Loc) *fnInfo { return info.fns[loc.Fn.Name] }

// WrittenBetween returns the set of concrete variables that may be
// written on some path from src to dst within one CFA (both locations
// must belong to the same function; a CrossCFAError is returned
// otherwise). Results are cached per location pair; the returned map
// is shared and must not be mutated.
func (info *Info) WrittenBetween(src, dst *cfa.Loc) (map[string]struct{}, error) {
	if src.Fn != dst.Fn {
		return nil, crossCFA("WrittenBetween", src, dst)
	}
	fi := info.fnOf(src)
	info.mu.Lock()
	defer info.mu.Unlock()
	return info.writtenBetweenLocked(fi, src, dst), nil
}

// MustWrittenBetween is WrittenBetween, panicking on a cross-CFA query
// (for tests and call sites that guarantee the precondition).
func (info *Info) MustWrittenBetween(src, dst *cfa.Loc) map[string]struct{} {
	w, err := info.WrittenBetween(src, dst)
	if err != nil {
		panic(err.Error())
	}
	return w
}

func (info *Info) writtenBetweenLocked(fi *fnInfo, src, dst *cfa.Loc) map[string]struct{} {
	key := src.Index*len(fi.fn.Locs) + dst.Index
	if cached, ok := fi.wrBtCache[key]; ok {
		return cached
	}
	info.Stats.WrBtCacheMiss++
	between := fi.out[src.Index].Copy()
	between.IntersectionWith(fi.in[dst.Index])
	union := make(map[string]struct{})
	between.ForEach(func(ei int) bool {
		for v := range fi.writes[ei] {
			union[v] = struct{}{}
		}
		return true
	})
	fi.wrBtCache[key] = union
	return union
}

// WrBt reports WrBt.(src, dst).L: whether an lvalue of live may be
// written between src and dst (§3.3, §4.1). A cross-CFA query returns
// a CrossCFAError; degraded callers treat that as "may be written"
// (the conservative answer).
func (info *Info) WrBt(src, dst *cfa.Loc, live cfa.LvalSet) (bool, error) {
	if src.Fn != dst.Fn {
		return true, crossCFA("WrBt", src, dst)
	}
	fi := info.fnOf(src)
	info.mu.Lock()
	info.Stats.WrBtQueries++
	written := info.writtenBetweenLocked(fi, src, dst)
	info.mu.Unlock()
	// The cached set is immutable once published and the alias info is
	// read-only, so the membership test runs outside the lock.
	if len(written) == 0 {
		return false, nil
	}
	for l := range live {
		if info.alias.Touches(l, written) {
			return true, nil
		}
	}
	return false, nil
}

// MustWrBt is WrBt, panicking on a cross-CFA query.
func (info *Info) MustWrBt(src, dst *cfa.Loc, live cfa.LvalSet) bool {
	b, err := info.WrBt(src, dst, live)
	if err != nil {
		panic(err.Error())
	}
	return b
}

// By reports pc ∈ By.pc': whether pc can reach the function exit
// without visiting pc' (§3.3, §4.1). Both locations must belong to the
// same CFA. Per the paper's definition, pc' itself never bypasses pc',
// and locations that cannot reach the exit at all bypass nothing.
func (info *Info) By(pc, pcStep *cfa.Loc) (bool, error) {
	if pc.Fn != pcStep.Fn {
		return true, crossCFA("By", pc, pcStep)
	}
	fi := info.fnOf(pc)
	info.mu.Lock()
	info.Stats.ByQueries++
	set, ok := fi.byCache[pcStep.Index]
	if !ok {
		info.Stats.ByCacheMiss++
		set = info.computeBy(fi, pcStep)
		fi.byCache[pcStep.Index] = set
	}
	info.mu.Unlock()
	return set.Has(pc.Index), nil
}

// MustBy is By, panicking on a cross-CFA query.
func (info *Info) MustBy(pc, pcStep *cfa.Loc) bool {
	b, err := info.By(pc, pcStep)
	if err != nil {
		panic(err.Error())
	}
	return b
}

// computeBy computes By.pcStep: backward reachability from the exit in
// the CFA with pcStep removed.
func (info *Info) computeBy(fi *fnInfo, pcStep *cfa.Loc) *bitset.Set {
	fn := fi.fn
	set := bitset.New(len(fn.Locs))
	if fn.Exit == pcStep {
		return set // nothing bypasses the exit... except nothing: exit removed
	}
	// Reverse adjacency walk from exit, never entering pcStep.
	set.Add(fn.Exit.Index)
	stack := []*cfa.Loc{fn.Exit}
	for len(stack) > 0 {
		loc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range loc.In {
			pred := e.Src
			if pred == pcStep || set.Has(pred.Index) {
				continue
			}
			set.Add(pred.Index)
			stack = append(stack, pred)
		}
	}
	set.Remove(pcStep.Index)
	return set
}

// Postdominates reports whether a postdominates b in their CFA: every
// path from b to the exit passes through a. By definition the exit
// postdominates everything that reaches it, and a location that cannot
// reach the exit is postdominated by everything (vacuously).
func (info *Info) Postdominates(a, b *cfa.Loc) (bool, error) {
	if a.Fn != b.Fn {
		return false, crossCFA("Postdominates", a, b)
	}
	fi := info.fnOf(a)
	info.mu.Lock()
	if fi.postdom == nil {
		info.computePostdom(fi)
	}
	pd := fi.postdom[b.Index]
	info.mu.Unlock()
	return pd.Has(a.Index), nil
}

// MustPostdominates is Postdominates, panicking on a cross-CFA query.
func (info *Info) MustPostdominates(a, b *cfa.Loc) bool {
	pd, err := info.Postdominates(a, b)
	if err != nil {
		panic(err.Error())
	}
	return pd
}

// computePostdom runs the standard iterative dataflow for
// postdominators over the reversed CFA.
func (info *Info) computePostdom(fi *fnInfo) {
	fn := fi.fn
	n := len(fn.Locs)
	full := bitset.New(n)
	for i := 0; i < n; i++ {
		full.Add(i)
	}
	pd := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		if fn.Locs[i] == fn.Exit {
			pd[i] = bitset.New(n)
			pd[i].Add(i)
		} else {
			pd[i] = full.Copy()
		}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			loc := fn.Locs[i]
			if loc == fn.Exit {
				continue
			}
			var meet *bitset.Set
			for _, e := range loc.Out {
				s := pd[e.Dst.Index]
				if meet == nil {
					meet = s.Copy()
				} else {
					meet.IntersectionWith(s)
				}
			}
			if meet == nil {
				meet = full.Copy() // no successors: vacuous
				meet.Remove(i)
			}
			meet.Add(i)
			// The iteration is monotone decreasing from the full set,
			// so a count change detects any set change.
			if meet.Count() != pd[i].Count() {
				changed = true
			}
			pd[i] = meet
		}
	}
	fi.postdom = pd
}

// ReachableEdgesFrom returns how many edges are reachable from loc in
// its CFA (exposed for tests).
func (info *Info) ReachableEdgesFrom(loc *cfa.Loc) int {
	return info.fnOf(loc).out[loc.Index].Count()
}

// EdgesReaching returns how many edges can reach loc in its CFA
// (exposed for tests).
func (info *Info) EdgesReaching(loc *cfa.Loc) int {
	return info.fnOf(loc).in[loc.Index].Count()
}
