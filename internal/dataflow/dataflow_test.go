package dataflow_test

import (
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/dataflow"
	"pathslice/internal/modref"
)

func analyze(t *testing.T, src string) (*cfa.Program, *dataflow.Info) {
	t.Helper()
	prog := compile.MustSource(src)
	al := alias.Analyze(prog)
	mr := modref.Analyze(prog, al)
	return prog, dataflow.Analyze(prog, al, mr)
}

// locAfter returns the destination location of the first edge in fn
// whose op string matches.
func locAfter(t *testing.T, fn *cfa.CFA, op string) *cfa.Loc {
	t.Helper()
	for _, e := range fn.Edges {
		if e.Op.String() == op {
			return e.Dst
		}
	}
	t.Fatalf("no edge %q in %s; have:\n%s", op, fn.Name, dump(fn))
	return nil
}

func locBefore(t *testing.T, fn *cfa.CFA, op string) *cfa.Loc {
	t.Helper()
	for _, e := range fn.Edges {
		if e.Op.String() == op {
			return e.Src
		}
	}
	t.Fatalf("no edge %q in %s; have:\n%s", op, fn.Name, dump(fn))
	return nil
}

func dump(fn *cfa.CFA) string {
	out := ""
	for _, e := range fn.Edges {
		out += e.String() + "\n"
	}
	return out
}

const straightLine = `
int a; int b; int c;
void main() {
  a = 1;
  b = 2;
  c = 3;
}
`

func TestWrBtStraightLine(t *testing.T) {
	prog, df := analyze(t, straightLine)
	main := prog.Funcs["main"]
	afterA := locAfter(t, main, "a := 1")
	beforeC := locBefore(t, main, "c := 3")
	liveB := cfa.NewLvalSet(cfa.Lvalue{Var: "b"})
	liveA := cfa.NewLvalSet(cfa.Lvalue{Var: "a"})
	if !df.MustWrBt(afterA, beforeC, liveB) {
		t.Error("b is written between after-a and before-c")
	}
	if df.MustWrBt(afterA, beforeC, liveA) {
		t.Error("a is not written between after-a and before-c")
	}
	// Degenerate interval: nothing is written between a location and itself.
	if df.MustWrBt(beforeC, beforeC, cfa.NewLvalSet(cfa.Lvalue{Var: "a"}, cfa.Lvalue{Var: "b"}, cfa.Lvalue{Var: "c"})) {
		t.Error("empty interval writes nothing")
	}
}

func TestWrBtAcrossBranches(t *testing.T) {
	prog, df := analyze(t, `
		int x; int y;
		void main() {
			if (nondet()) { x = 1; } else { y = 2; }
			skip;
		}`)
	main := prog.Funcs["main"]
	entry := main.Entry
	exitish := locBefore(t, main, "assume(1)") // the skip edge
	if !df.MustWrBt(entry, exitish, cfa.NewLvalSet(cfa.Lvalue{Var: "x"})) {
		t.Error("x written on the then branch")
	}
	if !df.MustWrBt(entry, exitish, cfa.NewLvalSet(cfa.Lvalue{Var: "y"})) {
		t.Error("y written on the else branch")
	}
	if df.MustWrBt(entry, exitish, cfa.NewLvalSet(cfa.Lvalue{Var: "z"})) {
		t.Error("z is never written")
	}
}

func TestWrBtThroughCallEdges(t *testing.T) {
	prog, df := analyze(t, `
		int g;
		void setg() { g = 1; }
		void main() { skip; setg(); skip; }`)
	main := prog.Funcs["main"]
	start := locBefore(t, main, "setg()")
	end := locAfter(t, main, "setg()")
	if !df.MustWrBt(start, end, cfa.NewLvalSet(cfa.Lvalue{Var: "g"})) {
		t.Error("call edge must contribute Mods(setg) = {g}")
	}
	if df.MustWrBt(start, end, cfa.NewLvalSet(cfa.Lvalue{Var: "h"})) {
		t.Error("setg does not write h")
	}
}

func TestWrBtRespectsLoops(t *testing.T) {
	prog, df := analyze(t, `
		int i; int s;
		void main() {
			i = 0;
			while (i < 10) { s = s + i; i = i + 1; }
			skip;
		}`)
	main := prog.Funcs["main"]
	// From loop head to after-loop, both i and s may be written.
	head := locAfter(t, main, "i := 0")
	after := locBefore(t, main, "assume(1)")
	if !df.MustWrBt(head, after, cfa.NewLvalSet(cfa.Lvalue{Var: "s"})) {
		t.Error("s written inside loop between head and after")
	}
	if !df.MustWrBt(head, after, cfa.NewLvalSet(cfa.Lvalue{Var: "i"})) {
		t.Error("i written inside loop")
	}
}

func TestByBasics(t *testing.T) {
	prog, df := analyze(t, `
		int a;
		void main() {
			if (a > 0) {
				skip;
			}
			a = 2;
		}`)
	main := prog.Funcs["main"]
	branch := locBefore(t, main, "assume((a > 0))")
	join := locBefore(t, main, "a := 2")
	// Every path from the branch reaches the join: branch cannot bypass it.
	if df.MustBy(branch, join) {
		t.Error("join postdominates branch: no bypass")
	}
	// But the branch can bypass the then-block's interior.
	thenLoc := locAfter(t, main, "assume((a > 0))")
	if !df.MustBy(branch, thenLoc) {
		t.Error("branch can bypass the then block via the else edge")
	}
	// Nothing can bypass the exit.
	if df.MustBy(branch, main.Exit) {
		t.Error("By.exit is empty by definition")
	}
	// A location never bypasses itself.
	if df.MustBy(join, join) {
		t.Error("a location does not bypass itself")
	}
}

func TestByErrorLocationsBypassNothing(t *testing.T) {
	prog, df := analyze(t, `
		int a;
		void main() {
			if (a == 0) { error; }
			skip;
		}`)
	main := prog.Funcs["main"]
	errLoc := main.ErrorLocs()[0]
	after := locBefore(t, main, "assume(1)")
	// The error location cannot reach the exit, so it is in no By set.
	if df.MustBy(errLoc, after) {
		t.Error("error location cannot bypass anything (cannot reach exit)")
	}
	// The branch point can bypass the error location.
	branch := locBefore(t, main, "assume((a == 0))")
	if !df.MustBy(branch, errLoc) {
		t.Error("branch can bypass the error location")
	}
}

func TestPostdominates(t *testing.T) {
	prog, df := analyze(t, `
		int a;
		void main() {
			if (a > 0) { a = 1; } else { a = 2; }
			a = 3;
		}`)
	main := prog.Funcs["main"]
	branch := locBefore(t, main, "assume((a > 0))")
	join := locBefore(t, main, "a := 3")
	thenLoc := locBefore(t, main, "a := 1")
	if !df.MustPostdominates(join, branch) {
		t.Error("join postdominates the branch")
	}
	if !df.MustPostdominates(main.Exit, branch) {
		t.Error("exit postdominates the branch")
	}
	if df.MustPostdominates(thenLoc, branch) {
		t.Error("then block does not postdominate the branch")
	}
	if !df.MustPostdominates(join, join) {
		t.Error("postdominance is reflexive")
	}
}

// By and postdominance are complementary: pc can bypass pc' iff pc' does
// not postdominate pc (for locations that can reach the exit). This is
// exactly the paper's remark "the set of all locations that pc' does not
// postdominate".
func TestByMatchesPostdominance(t *testing.T) {
	prog, df := analyze(t, `
		int a; int b;
		void main() {
			if (a > 0) {
				b = 1;
				if (b > a) { b = 2; }
			} else {
				while (b < 10) { b = b + 1; }
			}
			a = b;
		}`)
	main := prog.Funcs["main"]
	// Restrict to locations that can reach the exit.
	reachesExit := func(l *cfa.Loc) bool {
		seen := map[*cfa.Loc]bool{}
		var walk func(x *cfa.Loc) bool
		walk = func(x *cfa.Loc) bool {
			if x == main.Exit {
				return true
			}
			if seen[x] {
				return false
			}
			seen[x] = true
			for _, e := range x.Out {
				if walk(e.Dst) {
					return true
				}
			}
			return false
		}
		return walk(l)
	}
	for _, pc := range main.Locs {
		if !reachesExit(pc) {
			continue
		}
		for _, step := range main.Locs {
			if pc == step {
				continue
			}
			by := df.MustBy(pc, step)
			pd := df.MustPostdominates(step, pc)
			if by == pd {
				t.Errorf("By(%v,%v)=%v but Postdominates(%v,%v)=%v; should be complementary",
					pc, step, by, step, pc, pd)
			}
		}
	}
}

func TestStatsAndCaching(t *testing.T) {
	prog, df := analyze(t, straightLine)
	main := prog.Funcs["main"]
	a := main.Entry
	b := main.Exit
	live := cfa.NewLvalSet(cfa.Lvalue{Var: "a"})
	df.MustWrBt(a, b, live)
	miss1 := df.Stats.WrBtCacheMiss
	df.MustWrBt(a, b, live)
	if df.Stats.WrBtCacheMiss != miss1 {
		t.Error("second WrBt query must hit the cache")
	}
	df.MustBy(a, b)
	miss2 := df.Stats.ByCacheMiss
	df.MustBy(a, b)
	if df.Stats.ByCacheMiss != miss2 {
		t.Error("second By query must hit the cache")
	}
	if df.Stats.WrBtQueries != 2 || df.Stats.ByQueries != 2 {
		t.Errorf("query counters: %+v", df.Stats)
	}
}

func TestReachabilityCounters(t *testing.T) {
	prog, df := analyze(t, straightLine)
	main := prog.Funcs["main"]
	if got := df.ReachableEdgesFrom(main.Entry); got != len(main.Edges) {
		t.Errorf("all %d edges reachable from entry, got %d", len(main.Edges), got)
	}
	if got := df.EdgesReaching(main.Exit); got != len(main.Edges) {
		t.Errorf("all %d edges reach exit, got %d", len(main.Edges), got)
	}
	if got := df.ReachableEdgesFrom(main.Exit); got != 0 {
		t.Errorf("no edges reachable from exit, got %d", got)
	}
}
