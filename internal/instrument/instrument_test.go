package instrument_test

import (
	"strings"
	"testing"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/instrument"
	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
)

func instrumentSrc(t *testing.T, src string) *instrument.Result {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := instrument.Instrument(prog)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	// The instrumented program must be a closed, type-correct MiniC
	// program (no intrinsics remain).
	if _, err := types.Check(res.Prog); err != nil {
		t.Fatalf("instrumented program fails type check: %v\n%s", err, ast.Print(res.Prog))
	}
	return res
}

// checkCluster runs the CEGAR checker on every error location of the
// per-cluster program and returns the combined verdict (error if any
// location is reachable).
func checkCluster(t *testing.T, prog *ast.Program, fn string) cegar.Verdict {
	t.Helper()
	clusterProg, err := instrument.ForCluster(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(clusterProg)
	if err != nil {
		t.Fatalf("cluster program: %v\n%s", err, ast.Print(clusterProg))
	}
	cprog, err := cfa.Build(info)
	if err != nil {
		t.Fatal(err)
	}
	checker := cegar.New(cprog, cegar.Options{UseSlicing: true})
	verdict := cegar.VerdictSafe
	for _, loc := range cprog.ErrorLocs() {
		r := checker.Check(loc)
		if r.Verdict == cegar.VerdictUnsafe {
			return cegar.VerdictUnsafe
		}
		if r.Verdict != cegar.VerdictSafe {
			verdict = r.Verdict
		}
	}
	return verdict
}

func TestInstrumentBasicShape(t *testing.T) {
	res := instrumentSrc(t, `
		void main() {
			int f = fopen();
			fgets(f);
			fclose(f);
		}`)
	out := ast.Print(res.Prog)
	for _, want := range []string{"f__state", "nondet()", "error;"} {
		if !strings.Contains(out, want) {
			t.Errorf("instrumented program missing %q:\n%s", want, out)
		}
	}
	if res.TotalSites != 2 { // fgets check + fclose check
		t.Errorf("sites: %d, want 2\n%s", res.TotalSites, out)
	}
	if len(res.Clusters) != 1 || res.Clusters[0].Function != "main" {
		t.Errorf("clusters: %+v", res.Clusters)
	}
}

func TestCorrectUsageIsSafe(t *testing.T) {
	res := instrumentSrc(t, `
		void main() {
			int f = fopen();
			if (f != 0) {
				fgets(f);
				fclose(f);
			}
		}`)
	if v := checkCluster(t, res.Prog, "main"); v != cegar.VerdictSafe {
		t.Fatalf("correct usage: verdict %s\n%s", v, ast.Print(res.Prog))
	}
}

func TestMissingNullCheckIsBug(t *testing.T) {
	// The wuftpd pattern (Fig. 4): the fopen result is used without a
	// NULL check — fopen may fail, leaving the state closed.
	res := instrumentSrc(t, `
		void main() {
			int f = fopen();
			fgets(f);
		}`)
	if v := checkCluster(t, res.Prog, "main"); v != cegar.VerdictUnsafe {
		t.Fatalf("missing null check must be reported: verdict %s\n%s", v, ast.Print(res.Prog))
	}
}

func TestDoubleCloseIsBug(t *testing.T) {
	res := instrumentSrc(t, `
		void main() {
			int f = fopen();
			if (f != 0) {
				fclose(f);
				fclose(f);
			}
		}`)
	if v := checkCluster(t, res.Prog, "main"); v != cegar.VerdictUnsafe {
		t.Fatalf("double close must be reported: verdict %s", v)
	}
}

func TestUseAfterCloseIsBug(t *testing.T) {
	res := instrumentSrc(t, `
		void main() {
			int f = fopen();
			if (f != 0) {
				fclose(f);
				fputs(f);
			}
		}`)
	if v := checkCluster(t, res.Prog, "main"); v != cegar.VerdictUnsafe {
		t.Fatalf("use after close must be reported: verdict %s", v)
	}
}

func TestHandleFlowsThroughCall(t *testing.T) {
	// File handle passed to a helper that reads from it.
	res := instrumentSrc(t, `
		void reader(int h) {
			fgets(h);
		}
		void main() {
			int f = fopen();
			if (f != 0) {
				reader(f);
				fclose(f);
			}
		}`)
	if v := checkCluster(t, res.Prog, "reader"); v != cegar.VerdictSafe {
		t.Fatalf("handle state must flow into reader: verdict %s\n%s", v, ast.Print(res.Prog))
	}
	// Buggy variant: helper called with a possibly-NULL handle.
	res2 := instrumentSrc(t, `
		void reader(int h) {
			fgets(h);
		}
		void main() {
			int f = fopen();
			reader(f);
		}`)
	if v := checkCluster(t, res2.Prog, "reader"); v != cegar.VerdictUnsafe {
		t.Fatalf("unchecked handle through call must be reported: verdict %s\n%s", v, ast.Print(res2.Prog))
	}
}

func TestHandleReturnedFromFunction(t *testing.T) {
	// The ftpd_popen pattern: a helper returns a possibly-NULL handle.
	res := instrumentSrc(t, `
		int myopen() {
			int h = fopen();
			return h;
		}
		void main() {
			int f = myopen();
			fgets(f);
		}`)
	if v := checkCluster(t, res.Prog, "main"); v != cegar.VerdictUnsafe {
		t.Fatalf("NULL return through helper must be reported: verdict %s\n%s", v, ast.Print(res.Prog))
	}
	// Checked variant is safe.
	res2 := instrumentSrc(t, `
		int myopen() {
			int h = fopen();
			return h;
		}
		void main() {
			int f = myopen();
			if (f != 0) {
				fgets(f);
			}
		}`)
	if v := checkCluster(t, res2.Prog, "main"); v != cegar.VerdictSafe {
		t.Fatalf("checked return must be safe: verdict %s\n%s", v, ast.Print(res2.Prog))
	}
}

func TestHandleCopyThreadsState(t *testing.T) {
	res := instrumentSrc(t, `
		void main() {
			int f = fopen();
			if (f != 0) {
				int g = f;
				fgets(g);
				fclose(g);
			}
		}`)
	if v := checkCluster(t, res.Prog, "main"); v != cegar.VerdictSafe {
		t.Fatalf("copied handle must inherit state: verdict %s\n%s", v, ast.Print(res.Prog))
	}
}

func TestClusterIsolation(t *testing.T) {
	res := instrumentSrc(t, `
		void buggy() {
			int f = fopen();
			fgets(f);
		}
		void fine() {
			int g = fopen();
			if (g != 0) { fclose(g); }
		}
		void main() {
			buggy();
			fine();
		}`)
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters: %+v", res.Clusters)
	}
	if v := checkCluster(t, res.Prog, "buggy"); v != cegar.VerdictUnsafe {
		t.Errorf("buggy cluster: %s", v)
	}
	if v := checkCluster(t, res.Prog, "fine"); v != cegar.VerdictSafe {
		t.Errorf("fine cluster: %s", v)
	}
	// The per-cluster program for `fine` must contain no error sites
	// outside fine.
	cp, err := instrument.ForCluster(res.Prog, "fine")
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Print(cp)
	if strings.Count(printed, "error;") != 1 {
		t.Errorf("cluster isolation failed:\n%s", printed)
	}
}

func TestFgetsResultIsData(t *testing.T) {
	res := instrumentSrc(t, `
		void main() {
			int f = fopen();
			if (f != 0) {
				int data = fgets(f);
				if (data > 0) { skip; }
				fclose(f);
			}
		}`)
	if v := checkCluster(t, res.Prog, "main"); v != cegar.VerdictSafe {
		t.Fatalf("verdict %s\n%s", v, ast.Print(res.Prog))
	}
}
