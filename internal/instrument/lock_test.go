package instrument_test

import (
	"strings"
	"testing"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/instrument"
	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
)

func instrumentLocks(t *testing.T, src string) *instrument.Result {
	t.Helper()
	prog, err := parser.Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := instrument.InstrumentLocks(prog)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	if _, err := types.Check(res.Prog); err != nil {
		t.Fatalf("instrumented program fails type check: %v\n%s", err, ast.Print(res.Prog))
	}
	return res
}

func checkLockCluster(t *testing.T, prog *ast.Program, fn string) cegar.Verdict {
	t.Helper()
	clusterProg, err := instrument.ForCluster(prog, fn)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(clusterProg)
	if err != nil {
		t.Fatal(err)
	}
	cprog, err := cfa.Build(info)
	if err != nil {
		t.Fatal(err)
	}
	checker := cegar.New(cprog, cegar.Options{UseSlicing: true})
	for _, loc := range cprog.ErrorLocs() {
		if r := checker.Check(loc); r.Verdict != cegar.VerdictSafe {
			return r.Verdict
		}
	}
	return cegar.VerdictSafe
}

func TestLockDisciplineSafe(t *testing.T) {
	res := instrumentLocks(t, `
		int mtx;
		void main() {
			lock(mtx);
			unlock(mtx);
			lock(mtx);
			unlock(mtx);
		}`)
	if v := checkLockCluster(t, res.Prog, "main"); v != cegar.VerdictSafe {
		t.Fatalf("balanced locking: %s\n%s", v, ast.Print(res.Prog))
	}
}

func TestDoubleLockIsBug(t *testing.T) {
	res := instrumentLocks(t, `
		int mtx;
		void main() {
			lock(mtx);
			lock(mtx);
		}`)
	if v := checkLockCluster(t, res.Prog, "main"); v != cegar.VerdictUnsafe {
		t.Fatalf("double lock: %s", v)
	}
}

func TestUnlockWithoutLockIsBug(t *testing.T) {
	res := instrumentLocks(t, `
		int mtx;
		void main() {
			unlock(mtx);
		}`)
	if v := checkLockCluster(t, res.Prog, "main"); v != cegar.VerdictUnsafe {
		t.Fatalf("unlock without lock: %s", v)
	}
}

func TestConditionalDoubleLock(t *testing.T) {
	// The classic BLAST example: lock taken in a loop iteration where
	// the flag did not reset.
	res := instrumentLocks(t, `
		int mtx;
		int got;
		void main() {
			got = nondet();
			lock(mtx);
			if (got != 0) {
				unlock(mtx);
			}
			lock(mtx);   // double lock when got == 0...
		}`)
	if v := checkLockCluster(t, res.Prog, "main"); v != cegar.VerdictUnsafe {
		t.Fatalf("conditional double lock: %s\n%s", v, ast.Print(res.Prog))
	}
	// The guarded-correct variant is safe.
	res2 := instrumentLocks(t, `
		int mtx;
		int got;
		void main() {
			got = nondet();
			lock(mtx);
			unlock(mtx);
			if (got != 0) {
				lock(mtx);
				unlock(mtx);
			}
		}`)
	if v := checkLockCluster(t, res2.Prog, "main"); v != cegar.VerdictSafe {
		t.Fatalf("correct variant: %s", v)
	}
}

func TestLockThroughCall(t *testing.T) {
	res := instrumentLocks(t, `
		int mtx;
		void critical(int m) {
			lock(m);
			unlock(m);
		}
		void main() {
			critical(mtx);
			critical(mtx);
		}`)
	if v := checkLockCluster(t, res.Prog, "critical"); v != cegar.VerdictSafe {
		t.Fatalf("lock state must thread through the call: %s\n%s", v, ast.Print(res.Prog))
	}
	// Buggy: caller holds the lock already.
	res2 := instrumentLocks(t, `
		int mtx;
		void critical(int m) {
			lock(m);
			unlock(m);
		}
		void main() {
			lock(mtx);
			critical(mtx);
		}`)
	if v := checkLockCluster(t, res2.Prog, "critical"); v != cegar.VerdictUnsafe {
		t.Fatalf("re-lock through call must be reported: %s\n%s", v, ast.Print(res2.Prog))
	}
}

func TestLockInstrumentShape(t *testing.T) {
	res := instrumentLocks(t, `
		int mtx;
		void main() { lock(mtx); unlock(mtx); }`)
	out := ast.Print(res.Prog)
	if !strings.Contains(out, "mtx__lk") {
		t.Errorf("missing shadow variable:\n%s", out)
	}
	if res.TotalSites != 2 {
		t.Errorf("sites: %d", res.TotalSites)
	}
	if !instrument.IsLockIntrinsic("lock") || instrument.IsLockIntrinsic("fopen") {
		t.Error("IsLockIntrinsic misclassifies")
	}
}
