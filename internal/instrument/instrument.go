// Package instrument implements the file-handling property
// instrumentation of §5 of the paper:
//
//	"We instrumented the code to track the system calls fopen and
//	fdopen to mark the return value as an open file pointer (in case
//	it is non-null). For every fprintf, fgets, or fputs, we check that
//	the file argument is an open file. Finally, we instrument fclose
//	to expect an open file, and change the file state to closed."
//
// The pass is source-to-source on the MiniC AST. File handles are int
// values returned by the intrinsic fopen()/fdopen(); each file-typed
// variable x gains a shadow typestate variable x__state (0 closed,
// 1 open) threaded through copies, calls, and returns. Property
// violations become `error;` statements, which the model checker then
// tries to reach.
//
// Check clustering follows the paper's methodology: "we cluster calls
// to __error__ according to their calling functions, and then check
// each function that can potentially call __error__ independently."
package instrument

import (
	"fmt"
	"sort"

	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/token"
	"pathslice/internal/obs"
)

// Intrinsics recognized by the pass.
var intrinsics = map[string]bool{
	"fopen":   true,
	"fdopen":  true,
	"fclose":  true,
	"fgets":   true,
	"fprintf": true,
	"fputs":   true,
}

// IsIntrinsic reports whether name is one of the modeled libc calls.
func IsIntrinsic(name string) bool { return intrinsics[name] }

// Cluster identifies one independent check: a function containing
// instrumented error sites.
type Cluster struct {
	Function string
	Sites    int
}

// Result is the outcome of instrumenting a program.
type Result struct {
	// Prog is the instrumented program (all error sites active).
	Prog *ast.Program
	// Clusters lists functions with error sites, sorted by name.
	Clusters []Cluster
	// TotalSites is the total number of instrumented error points.
	TotalSites int
}

// stateVar returns the shadow variable name for a file variable.
func stateVar(name string) string { return name + "__state" }

// retStateVar returns the global carrying a file-returning function's
// result state.
func retStateVar(fn string) string { return fn + "__retstate" }

// Instrument rewrites prog (which may call the file intrinsics) into a
// pure MiniC program with the property encoded as error-location
// reachability. The input AST is not modified.
func Instrument(prog *ast.Program) (*Result, error) {
	sp := obs.StartSpan(obs.PhaseInstrument)
	defer sp.End()
	// Deep-copy via print/reparse so the caller's AST stays intact.
	clone, err := parser.Parse([]byte(ast.Print(prog)))
	if err != nil {
		return nil, fmt.Errorf("instrument: reparse failed: %w", err)
	}
	ins := &instrumenter{
		prog:      clone,
		fileVars:  make(map[string]bool),
		fileRet:   make(map[string]bool),
		fileParam: make(map[string]map[int]bool),
	}
	ins.inferFileVars()
	if err := ins.rewrite(); err != nil {
		return nil, err
	}
	res := &Result{Prog: ins.prog}
	counts := make(map[string]int)
	for _, f := range ins.prog.Funcs {
		n := countErrors(f.Body)
		if n > 0 {
			counts[f.Name] = n
			res.TotalSites += n
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		res.Clusters = append(res.Clusters, Cluster{Function: n, Sites: counts[n]})
	}
	return res, nil
}

// ForCluster returns a copy of the instrumented program in which only
// the error sites of the given function remain; all other clusters'
// error statements become skips. This is the per-check program of the
// paper's methodology.
func ForCluster(instrumented *ast.Program, fn string) (*ast.Program, error) {
	sp := obs.StartSpan(obs.PhaseInstrument)
	defer sp.End()
	clone, err := parser.Parse([]byte(ast.Print(instrumented)))
	if err != nil {
		return nil, fmt.Errorf("instrument: reparse failed: %w", err)
	}
	for _, f := range clone.Funcs {
		if f.Name == fn {
			continue
		}
		disableErrors(f.Body)
	}
	return clone, nil
}

func countErrors(b *ast.BlockStmt) int {
	n := 0
	walkStmts(b, func(s ast.Stmt) {
		if _, ok := s.(*ast.ErrorStmt); ok {
			n++
		}
		if _, ok := s.(*ast.AssertStmt); ok {
			n++
		}
	})
	return n
}

func disableErrors(b *ast.BlockStmt) {
	mapStmts(b, func(s ast.Stmt) []ast.Stmt {
		switch s := s.(type) {
		case *ast.ErrorStmt:
			return []ast.Stmt{&ast.SkipStmt{PosInfo: s.PosInfo}}
		case *ast.AssertStmt:
			// assert(p) keeps its assume power but loses the error site.
			return []ast.Stmt{&ast.AssumeStmt{Pred: s.Pred, PosInfo: s.PosInfo}}
		}
		return nil
	})
}

// ---------------------------------------------------------------------------

type instrumenter struct {
	prog *ast.Program
	// fileVars: qualified "fn::x" or global "x" names holding handles.
	fileVars map[string]bool
	// fileRet: functions returning a file handle.
	fileRet map[string]bool
	// fileParam[fn][i]: parameter i of fn receives a handle.
	fileParam map[string]map[int]bool
}

func (ins *instrumenter) qual(fn *ast.FuncDecl, name string) string {
	for _, p := range fn.Params {
		if p.Name == name {
			return fn.Name + "::" + name
		}
	}
	// Locals shadowing is forbidden by the checker, but at this stage we
	// have not type-checked; qualify if declared anywhere in the body.
	declared := false
	walkStmts(fn.Body, func(s ast.Stmt) {
		if d, ok := s.(*ast.DeclStmt); ok && d.Name == name {
			declared = true
		}
	})
	if declared {
		return fn.Name + "::" + name
	}
	return name
}

// inferFileVars runs a fixpoint marking variables that may hold file
// handles: targets of fopen/fdopen results, copies of file variables,
// parameters receiving file arguments, and results of file-returning
// functions.
func (ins *instrumenter) inferFileVars() {
	changed := true
	for changed {
		changed = false
		mark := func(q string) {
			if !ins.fileVars[q] {
				ins.fileVars[q] = true
				changed = true
			}
		}
		for _, fn := range ins.prog.Funcs {
			fn := fn
			walkStmts(fn.Body, func(s ast.Stmt) {
				lhs, rhs := assignParts(s)
				if lhs == "" {
					// Calls in statement position still propagate into
					// parameters.
					if es, ok := s.(*ast.ExprStmt); ok {
						ins.propagateCallArgs(fn, es.Call)
					}
					return
				}
				q := ins.qual(fn, lhs)
				switch r := rhs.(type) {
				case *ast.CallExpr:
					ins.propagateCallArgs(fn, r)
					if r.Callee == "fopen" || r.Callee == "fdopen" {
						mark(q)
					} else if ins.fileRet[r.Callee] {
						mark(q)
					}
				case *ast.Ident:
					if ins.fileVars[ins.qual(fn, r.Name)] {
						mark(q)
					}
				}
			})
			// Returns of file variables mark the function.
			walkStmts(fn.Body, func(s ast.Stmt) {
				if r, ok := s.(*ast.ReturnStmt); ok && r.Value != nil {
					if id, ok := r.Value.(*ast.Ident); ok && ins.fileVars[ins.qual(fn, id.Name)] {
						if !ins.fileRet[fn.Name] {
							ins.fileRet[fn.Name] = true
							changed = true
						}
					}
				}
			})
			// Parameters marked as file params mark the local copies.
			if fp := ins.fileParam[fn.Name]; fp != nil {
				for i := range fp {
					if i < len(fn.Params) {
						mark(fn.Name + "::" + fn.Params[i].Name)
					}
				}
			}
		}
	}
}

func (ins *instrumenter) propagateCallArgs(fn *ast.FuncDecl, call *ast.CallExpr) {
	if intrinsics[call.Callee] {
		return
	}
	for i, a := range call.Args {
		id, ok := a.(*ast.Ident)
		if !ok {
			continue
		}
		if ins.fileVars[ins.qual(fn, id.Name)] {
			if ins.fileParam[call.Callee] == nil {
				ins.fileParam[call.Callee] = make(map[int]bool)
			}
			ins.fileParam[call.Callee][i] = true
		}
	}
}

// assignParts extracts (lhs, rhs) from assignment-like statements.
func assignParts(s ast.Stmt) (string, ast.Expr) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Deref {
			return "", nil
		}
		return s.LHS, s.RHS
	case *ast.DeclStmt:
		if s.Init == nil {
			return "", nil
		}
		return s.Name, s.Init
	}
	return "", nil
}

// rewrite performs the actual transformation.
func (ins *instrumenter) rewrite() error {
	// 1. Shadow globals for file globals, ret-state globals.
	var newGlobals []*ast.GlobalDecl
	for _, g := range ins.prog.Globals {
		newGlobals = append(newGlobals, g)
		if ins.fileVars[g.Name] {
			newGlobals = append(newGlobals, &ast.GlobalDecl{
				Name: stateVar(g.Name), Type: ast.TypeInt, PosInfo: g.PosInfo,
			})
		}
	}
	for _, fn := range ins.prog.Funcs {
		if ins.fileRet[fn.Name] {
			newGlobals = append(newGlobals, &ast.GlobalDecl{
				Name: retStateVar(fn.Name), Type: ast.TypeInt, PosInfo: fn.PosInfo,
			})
		}
	}
	ins.prog.Globals = newGlobals

	// 2. Extra state parameters for file params; shadow locals; call and
	// intrinsic rewriting.
	for _, fn := range ins.prog.Funcs {
		fn := fn
		if fp := ins.fileParam[fn.Name]; fp != nil {
			idxs := make([]int, 0, len(fp))
			for i := range fp {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			for _, i := range idxs {
				if i < len(fn.Params) {
					fn.Params = append(fn.Params, ast.Param{
						Name: stateVar(fn.Params[i].Name), Type: ast.TypeInt,
					})
				}
			}
		}
		ins.rewriteBlock(fn, fn.Body)
		// Declare shadow locals for file locals at function entry.
		var decls []ast.Stmt
		seen := map[string]bool{}
		walkStmts(fn.Body, func(s ast.Stmt) {
			if d, ok := s.(*ast.DeclStmt); ok {
				q := fn.Name + "::" + d.Name
				if ins.fileVars[q] && !seen[d.Name] {
					seen[d.Name] = true
					decls = append(decls, &ast.DeclStmt{
						Name: stateVar(d.Name), Type: ast.TypeInt,
						Init: &ast.IntLit{Value: 0}, PosInfo: d.PosInfo,
					})
				}
			}
		})
		fn.Body.Stmts = append(decls, fn.Body.Stmts...)
	}
	return nil
}

// stateRef builds a reference to a variable's shadow state.
func stateRef(name string) *ast.Ident { return &ast.Ident{Name: stateVar(name)} }

// openCheck builds `if (x__state != 1) error;` when x is a tracked file
// variable. For an unknown handle (e.g. one that flowed through the
// heap, which the analysis does not model — the muh phenomenon of §5,
// Limitations), the state is unconstrained: `if (nondet() != 1) error;`,
// so the checker reports a possible violation, exactly as BLAST did.
func (ins *instrumenter) openCheck(fn *ast.FuncDecl, name string, pos token.Position) ast.Stmt {
	var state ast.Expr = stateRef(name)
	if !ins.fileVars[ins.qual(fn, name)] {
		state = &ast.Nondet{PosInfo: pos}
	}
	return &ast.IfStmt{
		Cond:    &ast.Binary{Op: token.NEQ, X: state, Y: &ast.IntLit{Value: 1}},
		Then:    &ast.BlockStmt{Stmts: []ast.Stmt{&ast.ErrorStmt{PosInfo: pos}}, PosInfo: pos},
		PosInfo: pos,
	}
}

// tracked reports whether name is a tracked file variable in fn.
func (ins *instrumenter) tracked(fn *ast.FuncDecl, name string) bool {
	return ins.fileVars[ins.qual(fn, name)]
}

// rewriteBlock rewrites intrinsic calls and file-variable copies inside
// a block, splicing multi-statement expansions.
func (ins *instrumenter) rewriteBlock(fn *ast.FuncDecl, b *ast.BlockStmt) {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		out = append(out, ins.rewriteStmt(fn, s)...)
	}
	b.Stmts = out
}

func (ins *instrumenter) rewriteStmt(fn *ast.FuncDecl, s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		ins.rewriteBlock(fn, s)
		return []ast.Stmt{s}
	case *ast.IfStmt:
		ins.rewriteBlock(fn, s.Then)
		if s.Else != nil {
			ins.rewriteBlock(fn, s.Else)
		}
		return []ast.Stmt{s}
	case *ast.WhileStmt:
		ins.rewriteBlock(fn, s.Body)
		return []ast.Stmt{s}
	case *ast.ForStmt:
		ins.rewriteBlock(fn, s.Body)
		return []ast.Stmt{s}
	case *ast.ExprStmt:
		return ins.rewriteCallStmt(fn, s)
	case *ast.SpawnStmt:
		// File handles crossing a spawn behave like call arguments: the
		// child thread's parameters get the same shadow-state extras.
		ins.appendStateArgs(fn, s.Call)
		return []ast.Stmt{s}
	case *ast.AssignStmt:
		return ins.rewriteAssign(fn, s, s.LHS, s.RHS, s.Deref)
	case *ast.DeclStmt:
		if s.Init == nil {
			return []ast.Stmt{s}
		}
		return ins.rewriteAssign(fn, s, s.Name, s.Init, false)
	case *ast.ReturnStmt:
		if s.Value != nil && ins.fileRet[fn.Name] {
			if id, ok := s.Value.(*ast.Ident); ok && ins.fileVars[ins.qual(fn, id.Name)] {
				set := &ast.AssignStmt{
					LHS: retStateVar(fn.Name), RHS: stateRef(id.Name), PosInfo: s.PosInfo,
				}
				return []ast.Stmt{set, s}
			}
		}
		return []ast.Stmt{s}
	}
	return []ast.Stmt{s}
}

// rewriteCallStmt handles intrinsics and user calls in statement
// position.
func (ins *instrumenter) rewriteCallStmt(fn *ast.FuncDecl, s *ast.ExprStmt) []ast.Stmt {
	call := s.Call
	pos := s.PosInfo
	switch call.Callee {
	case "fclose":
		name, ok := argVarName(call, 0)
		if !ok {
			return []ast.Stmt{&ast.SkipStmt{PosInfo: pos}}
		}
		out := []ast.Stmt{ins.openCheck(fn, name, pos)}
		if ins.tracked(fn, name) {
			out = append(out, &ast.AssignStmt{LHS: stateVar(name), RHS: &ast.IntLit{Value: 0}, PosInfo: pos})
		}
		return out
	case "fgets", "fprintf", "fputs":
		name, ok := argVarName(call, 0)
		if !ok {
			return []ast.Stmt{&ast.SkipStmt{PosInfo: pos}}
		}
		return []ast.Stmt{ins.openCheck(fn, name, pos)}
	case "fopen", "fdopen":
		// Result discarded: leaks are not part of the checked property.
		return []ast.Stmt{&ast.SkipStmt{PosInfo: pos}}
	}
	// User call: append state args for file params.
	ins.appendStateArgs(fn, call)
	return []ast.Stmt{s}
}

// rewriteAssign handles `lhs = rhs` where rhs may be an intrinsic call,
// a file-returning call, or a file-variable copy.
func (ins *instrumenter) rewriteAssign(fn *ast.FuncDecl, orig ast.Stmt, lhs string, rhs ast.Expr, deref bool) []ast.Stmt {
	pos := orig.Pos()
	if deref {
		// A handle stored through a pointer escapes the tracked set
		// (imprecise heap modeling, §5 Limitations): replace intrinsic
		// results with unconstrained data so the program stays closed.
		if r, ok := rhs.(*ast.CallExpr); ok && intrinsics[r.Callee] {
			return []ast.Stmt{replaceRHS(orig, &ast.Nondet{PosInfo: pos})}
		}
		return []ast.Stmt{orig}
	}
	switch r := rhs.(type) {
	case *ast.CallExpr:
		switch r.Callee {
		case "fopen", "fdopen":
			// lhs = nondet(); if (lhs != 0) lhs__state = 1; else lhs__state = 0;
			assign := replaceRHS(orig, &ast.Nondet{PosInfo: pos})
			setState := &ast.IfStmt{
				Cond: &ast.Binary{Op: token.NEQ, X: &ast.Ident{Name: lhs}, Y: &ast.IntLit{Value: 0}},
				Then: &ast.BlockStmt{Stmts: []ast.Stmt{
					&ast.AssignStmt{LHS: stateVar(lhs), RHS: &ast.IntLit{Value: 1}, PosInfo: pos},
				}, PosInfo: pos},
				Else: &ast.BlockStmt{Stmts: []ast.Stmt{
					&ast.AssignStmt{LHS: stateVar(lhs), RHS: &ast.IntLit{Value: 0}, PosInfo: pos},
				}, PosInfo: pos},
				PosInfo: pos,
			}
			return []ast.Stmt{assign, setState}
		case "fgets":
			// v = fgets(f): check f open, v becomes nondet data.
			name, ok := argVarName(r, 0)
			out := []ast.Stmt{}
			if ok {
				out = append(out, ins.openCheck(fn, name, pos))
			}
			out = append(out, replaceRHS(orig, &ast.Nondet{PosInfo: pos}))
			return out
		case "fclose", "fprintf", "fputs":
			name, ok := argVarName(r, 0)
			out := []ast.Stmt{}
			if ok {
				out = append(out, ins.openCheck(fn, name, pos))
				if r.Callee == "fclose" && ins.tracked(fn, name) {
					out = append(out, &ast.AssignStmt{LHS: stateVar(name), RHS: &ast.IntLit{Value: 0}, PosInfo: pos})
				}
			}
			out = append(out, replaceRHS(orig, &ast.Nondet{PosInfo: pos}))
			return out
		}
		// User call.
		ins.appendStateArgs(fn, r)
		out := []ast.Stmt{orig}
		if ins.fileRet[r.Callee] && ins.fileVars[ins.qual(fn, lhs)] {
			out = append(out, &ast.AssignStmt{
				LHS: stateVar(lhs), RHS: &ast.Ident{Name: retStateVar(r.Callee)}, PosInfo: pos,
			})
		}
		return out
	case *ast.Ident:
		// File-variable copy: thread the state.
		if ins.fileVars[ins.qual(fn, lhs)] && ins.fileVars[ins.qual(fn, r.Name)] {
			return []ast.Stmt{orig, &ast.AssignStmt{
				LHS: stateVar(lhs), RHS: stateRef(r.Name), PosInfo: pos,
			}}
		}
	}
	return []ast.Stmt{orig}
}

// appendStateArgs extends a user call with the shadow-state arguments
// for its file parameters.
func (ins *instrumenter) appendStateArgs(fn *ast.FuncDecl, call *ast.CallExpr) {
	fp := ins.fileParam[call.Callee]
	if fp == nil {
		return
	}
	idxs := make([]int, 0, len(fp))
	for i := range fp {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if i >= len(call.Args) {
			continue
		}
		if id, ok := call.Args[i].(*ast.Ident); ok && ins.fileVars[ins.qual(fn, id.Name)] {
			call.Args = append(call.Args, stateRef(id.Name))
		} else {
			// Unknown handle: state unconstrained.
			call.Args = append(call.Args, &ast.Nondet{PosInfo: call.PosInfo})
		}
	}
}

// argVarName extracts the i-th argument if it is a plain variable.
func argVarName(call *ast.CallExpr, i int) (string, bool) {
	if i >= len(call.Args) {
		return "", false
	}
	id, ok := call.Args[i].(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// replaceRHS clones an assignment-like statement with a new RHS.
func replaceRHS(s ast.Stmt, rhs ast.Expr) ast.Stmt {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return &ast.AssignStmt{Deref: s.Deref, LHS: s.LHS, RHS: rhs, PosInfo: s.PosInfo}
	case *ast.DeclStmt:
		return &ast.DeclStmt{Name: s.Name, Type: s.Type, Init: rhs, PosInfo: s.PosInfo}
	}
	return s
}

// ---------------------------------------------------------------------------
// AST walking helpers

// walkStmts visits every statement in a block, recursively.
func walkStmts(b *ast.BlockStmt, fn func(ast.Stmt)) {
	for _, s := range b.Stmts {
		fn(s)
		switch s := s.(type) {
		case *ast.BlockStmt:
			walkStmts(s, fn)
		case *ast.IfStmt:
			walkStmts(s.Then, fn)
			if s.Else != nil {
				walkStmts(s.Else, fn)
			}
		case *ast.WhileStmt:
			walkStmts(s.Body, fn)
		case *ast.ForStmt:
			if s.Init != nil {
				fn(s.Init)
			}
			if s.Post != nil {
				fn(s.Post)
			}
			walkStmts(s.Body, fn)
		}
	}
}

// mapStmts rewrites statements in place: repl returns a replacement
// list or nil to keep the statement (children are still visited).
func mapStmts(b *ast.BlockStmt, repl func(ast.Stmt) []ast.Stmt) {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		if r := repl(s); r != nil {
			out = append(out, r...)
			continue
		}
		switch s := s.(type) {
		case *ast.BlockStmt:
			mapStmts(s, repl)
		case *ast.IfStmt:
			mapStmts(s.Then, repl)
			if s.Else != nil {
				mapStmts(s.Else, repl)
			}
		case *ast.WhileStmt:
			mapStmts(s.Body, repl)
		case *ast.ForStmt:
			mapStmts(s.Body, repl)
		}
		out = append(out, s)
	}
	b.Stmts = out
}
