package instrument

import (
	"fmt"
	"sort"

	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/token"
	"pathslice/internal/obs"
)

// Lock-discipline instrumentation: the other classic typestate check
// the BLAST line of work (the paper's refs [3, 17]) was built around.
// Programs declare integer "lock" globals and call the intrinsics
//
//	lock(l)    // l must be unlocked; afterwards locked
//	unlock(l)  // l must be locked; afterwards unlocked
//
// InstrumentLocks lowers these to pure MiniC with a shadow variable
// l__lk per lock and `error;` at every violation (double lock, double
// unlock). Unlike file handles, locks are identified by variable, so no
// value-flow inference is needed — but locks passed to procedures still
// thread their state through extra parameters.
var lockIntrinsics = map[string]bool{
	"lock":   true,
	"unlock": true,
}

// IsLockIntrinsic reports whether name is lock or unlock.
func IsLockIntrinsic(name string) bool { return lockIntrinsics[name] }

func lkVar(name string) string { return name + "__lk" }

// InstrumentLocks rewrites prog's lock/unlock intrinsics into typestate
// checks. The returned Result uses the same clustering scheme as the
// file property.
func InstrumentLocks(prog *ast.Program) (*Result, error) {
	sp := obs.StartSpan(obs.PhaseInstrument)
	defer sp.End()
	clone, err := parser.Parse([]byte(ast.Print(prog)))
	if err != nil {
		return nil, fmt.Errorf("instrument: reparse failed: %w", err)
	}
	li := &lockInstrumenter{
		prog:      clone,
		lockVars:  make(map[string]bool),
		lockParam: make(map[string]map[int]bool),
	}
	li.inferLockVars()
	li.rewrite()
	res := &Result{Prog: li.prog}
	counts := make(map[string]int)
	for _, f := range li.prog.Funcs {
		if n := countErrors(f.Body); n > 0 {
			counts[f.Name] = n
			res.TotalSites += n
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		res.Clusters = append(res.Clusters, Cluster{Function: n, Sites: counts[n]})
	}
	return res, nil
}

type lockInstrumenter struct {
	prog      *ast.Program
	lockVars  map[string]bool // qualified names that are locks
	lockParam map[string]map[int]bool
}

func (li *lockInstrumenter) qual(fn *ast.FuncDecl, name string) string {
	for _, p := range fn.Params {
		if p.Name == name {
			return fn.Name + "::" + name
		}
	}
	declared := false
	walkStmts(fn.Body, func(s ast.Stmt) {
		if d, ok := s.(*ast.DeclStmt); ok && d.Name == name {
			declared = true
		}
	})
	if declared {
		return fn.Name + "::" + name
	}
	return name
}

// inferLockVars marks variables used as lock/unlock arguments, and
// propagates through call parameters.
func (li *lockInstrumenter) inferLockVars() {
	changed := true
	for changed {
		changed = false
		mark := func(q string) {
			if !li.lockVars[q] {
				li.lockVars[q] = true
				changed = true
			}
		}
		for _, fn := range li.prog.Funcs {
			fn := fn
			walkStmts(fn.Body, func(s ast.Stmt) {
				call := callOf(s)
				if call == nil {
					return
				}
				if lockIntrinsics[call.Callee] {
					if name, ok := argVarName(call, 0); ok {
						mark(li.qual(fn, name))
					}
					return
				}
				// User call: propagate lock-ness into parameters.
				for i, a := range call.Args {
					id, ok := a.(*ast.Ident)
					if !ok {
						continue
					}
					if li.lockVars[li.qual(fn, id.Name)] {
						if li.lockParam[call.Callee] == nil {
							li.lockParam[call.Callee] = make(map[int]bool)
						}
						if !li.lockParam[call.Callee][i] {
							li.lockParam[call.Callee][i] = true
							changed = true
						}
					}
				}
			})
			if lp := li.lockParam[fn.Name]; lp != nil {
				for i := range lp {
					if i < len(fn.Params) {
						mark(fn.Name + "::" + fn.Params[i].Name)
					}
				}
			}
			// Reverse direction: a parameter used as a lock inside fn
			// makes the position a lock parameter, so callers thread
			// state (and their argument variables become locks).
			for i, p := range fn.Params {
				if li.lockVars[fn.Name+"::"+p.Name] {
					if li.lockParam[fn.Name] == nil {
						li.lockParam[fn.Name] = make(map[int]bool)
					}
					if !li.lockParam[fn.Name][i] {
						li.lockParam[fn.Name][i] = true
						changed = true
					}
				}
			}
		}
		// Call-site back-propagation: arguments in lock positions are
		// locks in the caller.
		for _, fn := range li.prog.Funcs {
			fn := fn
			walkStmts(fn.Body, func(s ast.Stmt) {
				call := callOf(s)
				if call == nil || lockIntrinsics[call.Callee] {
					return
				}
				lp := li.lockParam[call.Callee]
				for i := range lp {
					if i < len(call.Args) {
						if id, ok := call.Args[i].(*ast.Ident); ok {
							mark(li.qual(fn, id.Name))
						}
					}
				}
			})
		}
	}
}

func callOf(s ast.Stmt) *ast.CallExpr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return s.Call
	case *ast.SpawnStmt:
		// A spawned call passes locks to the child thread exactly like a
		// plain call, so lock-ness propagates through it unchanged.
		return s.Call
	case *ast.AssignStmt:
		if c, ok := s.RHS.(*ast.CallExpr); ok {
			return c
		}
	case *ast.DeclStmt:
		if c, ok := s.Init.(*ast.CallExpr); ok {
			return c
		}
	}
	return nil
}

func (li *lockInstrumenter) rewrite() {
	// Shadow globals.
	var newGlobals []*ast.GlobalDecl
	for _, g := range li.prog.Globals {
		newGlobals = append(newGlobals, g)
		if li.lockVars[g.Name] {
			// Locks start unlocked: the shadow must be initialized,
			// unlike file states (which are always written by fopen
			// before any check).
			newGlobals = append(newGlobals, &ast.GlobalDecl{
				Name: lkVar(g.Name), Type: ast.TypeInt,
				Init: &ast.IntLit{Value: 0}, PosInfo: g.PosInfo,
			})
		}
	}
	li.prog.Globals = newGlobals

	for _, fn := range li.prog.Funcs {
		fn := fn
		// Extra state parameters for lock params.
		if lp := li.lockParam[fn.Name]; lp != nil {
			idxs := make([]int, 0, len(lp))
			for i := range lp {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			for _, i := range idxs {
				if i < len(fn.Params) {
					fn.Params = append(fn.Params, ast.Param{
						Name: lkVar(fn.Params[i].Name), Type: ast.TypeInt,
					})
				}
			}
		}
		li.rewriteBlock(fn, fn.Body)
		// Shadow locals for lock locals.
		var decls []ast.Stmt
		seen := map[string]bool{}
		walkStmts(fn.Body, func(s ast.Stmt) {
			if d, ok := s.(*ast.DeclStmt); ok {
				if li.lockVars[fn.Name+"::"+d.Name] && !seen[d.Name] {
					seen[d.Name] = true
					decls = append(decls, &ast.DeclStmt{
						Name: lkVar(d.Name), Type: ast.TypeInt,
						Init: &ast.IntLit{Value: 0}, PosInfo: d.PosInfo,
					})
				}
			}
		})
		fn.Body.Stmts = append(decls, fn.Body.Stmts...)
	}
}

func (li *lockInstrumenter) rewriteBlock(fn *ast.FuncDecl, b *ast.BlockStmt) {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		out = append(out, li.rewriteStmt(fn, s)...)
	}
	b.Stmts = out
}

func (li *lockInstrumenter) rewriteStmt(fn *ast.FuncDecl, s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		li.rewriteBlock(fn, s)
	case *ast.IfStmt:
		li.rewriteBlock(fn, s.Then)
		if s.Else != nil {
			li.rewriteBlock(fn, s.Else)
		}
	case *ast.WhileStmt:
		li.rewriteBlock(fn, s.Body)
	case *ast.ForStmt:
		li.rewriteBlock(fn, s.Body)
	case *ast.ExprStmt:
		return li.rewriteCall(fn, s)
	case *ast.SpawnStmt:
		li.threadLockArgs(fn, s.Call)
	}
	return []ast.Stmt{s}
}

// threadLockArgs appends the shadow lock-state arguments to a user
// call whose callee has lock parameters (shared by plain and spawned
// call sites).
func (li *lockInstrumenter) threadLockArgs(fn *ast.FuncDecl, call *ast.CallExpr) {
	lp := li.lockParam[call.Callee]
	if lp == nil {
		return
	}
	idxs := make([]int, 0, len(lp))
	for i := range lp {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if i >= len(call.Args) {
			continue
		}
		if id, ok := call.Args[i].(*ast.Ident); ok && li.lockVars[li.qual(fn, id.Name)] {
			call.Args = append(call.Args, &ast.Ident{Name: lkVar(id.Name)})
		} else {
			call.Args = append(call.Args, &ast.Nondet{PosInfo: call.PosInfo})
		}
	}
}

// rewriteCall lowers lock/unlock and threads state args on user calls.
func (li *lockInstrumenter) rewriteCall(fn *ast.FuncDecl, s *ast.ExprStmt) []ast.Stmt {
	call := s.Call
	pos := s.PosInfo
	check := func(name string, mustBe int64, setTo int64) []ast.Stmt {
		state := stateExprLock(name)
		return []ast.Stmt{
			&ast.IfStmt{
				Cond:    &ast.Binary{Op: token.NEQ, X: state, Y: &ast.IntLit{Value: mustBe}},
				Then:    &ast.BlockStmt{Stmts: []ast.Stmt{&ast.ErrorStmt{PosInfo: pos}}, PosInfo: pos},
				PosInfo: pos,
			},
			&ast.AssignStmt{LHS: lkVar(name), RHS: &ast.IntLit{Value: setTo}, PosInfo: pos},
		}
	}
	switch call.Callee {
	case "lock":
		if name, ok := argVarName(call, 0); ok {
			return check(name, 0, 1) // must be unlocked; lock it
		}
		return []ast.Stmt{&ast.SkipStmt{PosInfo: pos}}
	case "unlock":
		if name, ok := argVarName(call, 0); ok {
			return check(name, 1, 0) // must be locked; unlock it
		}
		return []ast.Stmt{&ast.SkipStmt{PosInfo: pos}}
	}
	// User call: append lock-state arguments.
	li.threadLockArgs(fn, call)
	return []ast.Stmt{s}
}

func stateExprLock(name string) ast.Expr { return &ast.Ident{Name: lkVar(name)} }
