// Package modref computes the Mods relation of §4 of the paper:
// Mods.f.l holds if the lvalue l can be modified directly inside f or
// within any function transitively called by f. It is the standard
// mod-ref analysis over the call graph, with writes expanded through
// may-alias information.
package modref

import (
	"sort"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
)

// Info holds per-function transitive write sets.
type Info struct {
	prog  *cfa.Program
	alias *alias.Info
	// mods[f] is the set of concrete variables f may write,
	// transitively through calls.
	mods map[string]map[string]struct{}
}

// Analyze computes Mods for every function. It visits functions in the
// program's callee-first topological order, so each callee's summary is
// complete before its callers are processed (recursion is rejected by
// the frontend).
func Analyze(prog *cfa.Program, al *alias.Info) *Info {
	in := &Info{prog: prog, alias: al, mods: make(map[string]map[string]struct{})}
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		set := make(map[string]struct{})
		for _, e := range fn.Edges {
			switch e.Op.Kind {
			case cfa.OpAssign:
				for _, v := range al.WrittenVars(e.Op.LHS) {
					set[v] = struct{}{}
				}
			case cfa.OpCall, cfa.OpSpawn:
				// A spawned thread runs concurrently with the rest of the
				// spawner's frame, so its writes are attributed to the
				// spawner exactly like a called function's.
				for v := range in.mods[e.Op.Callee] {
					set[v] = struct{}{}
				}
			}
		}
		in.mods[name] = set
	}
	return in
}

// ModsVars returns the concrete variables f may write, sorted.
func (in *Info) ModsVars(f string) []string {
	set := in.mods[f]
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ModsVarSet returns the raw write set of f; callers must not mutate it.
func (in *Info) ModsVarSet(f string) map[string]struct{} { return in.mods[f] }

// Mods reports Mods.f.l: whether calling f may modify the lvalue l.
func (in *Info) Mods(f string, l cfa.Lvalue) bool {
	return in.alias.Touches(l, in.mods[f])
}

// ModsAny reports Mods.f.L: whether calling f may modify any lvalue in
// the live set L (§4).
func (in *Info) ModsAny(f string, live cfa.LvalSet) bool {
	set := in.mods[f]
	if len(set) == 0 {
		return false
	}
	for l := range live {
		if in.alias.Touches(l, set) {
			return true
		}
	}
	return false
}
