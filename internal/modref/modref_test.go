package modref_test

import (
	"reflect"
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/modref"
)

func analyze(t *testing.T, src string) *modref.Info {
	t.Helper()
	prog := compile.MustSource(src)
	al := alias.Analyze(prog)
	return modref.Analyze(prog, al)
}

func TestDirectWrites(t *testing.T) {
	in := analyze(t, `
		int g; int h;
		void f() { g = 1; int local = 2; local = local + 1; }
		void main() { f(); h = 0; }`)
	mods := in.ModsVars("f")
	want := []string{"f::local", "g"}
	if !reflect.DeepEqual(mods, want) {
		t.Errorf("Mods(f) = %v, want %v", mods, want)
	}
	if in.Mods("f", cfa.Lvalue{Var: "h"}) {
		t.Error("f does not write h")
	}
	if !in.Mods("f", cfa.Lvalue{Var: "g"}) {
		t.Error("f writes g")
	}
}

func TestTransitiveWrites(t *testing.T) {
	in := analyze(t, `
		int g;
		void leaf() { g = 1; }
		void mid() { leaf(); }
		void top() { mid(); }
		void main() { top(); }`)
	for _, f := range []string{"leaf", "mid", "top", "main"} {
		if !in.Mods(f, cfa.Lvalue{Var: "g"}) {
			t.Errorf("Mods(%s).g should hold transitively", f)
		}
	}
}

func TestWritesThroughPointers(t *testing.T) {
	in := analyze(t, `
		int x; int y; int *p;
		void writer() { *p = 5; }
		void main() {
			if (nondet()) { p = &x; } else { p = &y; }
			writer();
		}`)
	if !in.Mods("writer", cfa.Lvalue{Var: "x"}) || !in.Mods("writer", cfa.Lvalue{Var: "y"}) {
		t.Error("writer may write both x and y through *p")
	}
	// Mods on a deref lvalue: writer touches *p.
	if !in.Mods("writer", cfa.Lvalue{Var: "p", Deref: true}) {
		t.Error("writer modifies *p")
	}
}

func TestModsAnyAndTransferVars(t *testing.T) {
	in := analyze(t, `
		int g;
		int getg() { return g; }
		void main() { int v = getg(); g = v; }`)
	// getg writes its $ret transfer variable.
	if !in.Mods("getg", cfa.Lvalue{Var: "getg::$ret"}) {
		t.Error("getg writes getg::$ret")
	}
	live := cfa.NewLvalSet(cfa.Lvalue{Var: "g"})
	if in.ModsAny("getg", live) {
		t.Error("getg does not write g")
	}
	live.Add(cfa.Lvalue{Var: "getg::$ret"})
	if !in.ModsAny("getg", live) {
		t.Error("ModsAny should see $ret")
	}
	if in.ModsAny("getg", cfa.NewLvalSet()) {
		t.Error("empty live set is never modified")
	}
}

func TestCalleeArgWritesBelongToCaller(t *testing.T) {
	// The caller writes f::$arg0; f writes its own param local.
	in := analyze(t, `
		void f(int a) { a = a + 1; }
		void main() { f(3); }`)
	if !in.Mods("main", cfa.Lvalue{Var: "f::$arg0"}) {
		t.Error("main writes f::$arg0 when calling f")
	}
	if !in.Mods("f", cfa.Lvalue{Var: "f::a"}) {
		t.Error("f writes its parameter copy")
	}
	if !in.Mods("main", cfa.Lvalue{Var: "f::a"}) {
		t.Error("main transitively writes f::a via the call")
	}
}
