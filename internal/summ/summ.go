// Package summ memoizes context-keyed callee slice summaries: the
// complete effect of running Algorithm PathSlice's backward pass over
// one callee frame of a path (from the return edge back through the
// matching call edge), keyed by the frame's exact edge segment and by
// the fraction of the caller's live set the callee can actually touch.
//
// The motivation is the paper's Figure 6 regime (gcc-class subjects:
// ~80k-block counterexamples over ~2000 procedures): a trace in that
// regime calls the same procedures over and over, and the plain
// backward walk re-runs the Take predicate — alias queries against the
// live set, WrBt/By dataflow lookups — for every edge of every frame
// at every call site. The decisions inside a frame, however, are a
// pure function of (a) the frame's edge sequence and (b) the
// projection of the live set onto the lvalues the callee's transitive
// mod set can touch (every Take rule inside the frame tests liveness
// only through may-alias against written lvalues, so live lvalues the
// callee cannot touch can never change a decision — the flow-
// insensitive pruning argument of "Data-Flow Guided Slicing"). Two
// dynamic frames with the same segment and the same projection
// therefore keep exactly the same edges, kill exactly the same live
// lvalues, and add exactly the same read lvalues.
//
// A Table entry stores, per (segment, projected-live-set) context:
//
//   - the per-edge decision vector (taken / not taken / frame-skip /
//     guard-chain-skip / skipped interior), so a hit reproduces the
//     walk's kept-edge set and observable Stats counters bit for bit;
//   - the net live-set transfer as a (kills, adds) pair — the backward
//     composition of per-edge (must-write, read) updates, which is
//     closed under out = (in \ kills) ∪ adds;
//   - the moved-observation effects (taken-by-kind counts, skipped
//     frames, skipped guard chains) so Result.Stats stays identical to
//     the summary-off walk.
//
// Lookups verify the key exactly (edge-ID sequence and projected live
// set are compared element-wise, not just by hash), so a 64-bit hash
// collision can never smuggle in a wrong summary. The table is safe
// for concurrent use by a shared core.Slicer.
//
// The deliberately broken StaleReuse mode drops the live-set component
// of the key — reusing whichever context was seen first for a segment
// regardless of what is live now. The oracle campaign must catch it
// (see core.UnsoundStaleSummaries and docs/TESTING.md); it exists to
// prove the differential gate has teeth, never for production use.
package summ

import (
	"sync"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/modref"
	"pathslice/internal/obs"
)

// Registry metrics (docs/OBSERVABILITY.md). Hits/misses count lookup
// outcomes at taken return edges; memo bytes approximates the table's
// resident footprint so a long-running process can watch it grow.
var (
	mHits      = obs.Default().Counter("summ_hits_total")
	mMisses    = obs.Default().Counter("summ_misses_total")
	mMemoBytes = obs.Default().Gauge("summ_memo_bytes")
)

// Decision is one edge's outcome in a summarized frame walk.
type Decision = uint8

// Per-edge decision codes. The walk only ever examines a subset of a
// frame's edges (skips jump over irrelevant regions); DecSkipped marks
// the never-examined interiors so a replay reproduces the jumps' stat
// counters at the exact edges where the original walk charged them.
const (
	// DecSkipped: interior of a frame/guard-chain skip; never examined.
	DecSkipped Decision = iota
	// DecNotTaken: examined by the Take predicate and dropped.
	DecNotTaken
	// DecTaken: kept in the slice.
	DecTaken
	// DecSkipFrame: an untaken return edge — the walk charged
	// SkippedFrames here and jumped past the callee frame and its call
	// edge.
	DecSkipFrame
	// DecSkipChain: a §4.2 guard-chain skip — the walk charged
	// SkippedGuardChains here and jumped straight to the frame's call
	// edge.
	DecSkipChain
)

// Effects are the observable Stats deltas of one summarized frame:
// exactly what the plain walk would have added to core.Stats while
// processing the segment.
type Effects struct {
	TakenAssign, TakenAssume, TakenCall, TakenReturn int
	SkippedFrames, SkippedGuardChains                int
}

// Summary is one memoized frame context. All fields are immutable
// after Insert; concurrent readers share them.
type Summary struct {
	// Callee names the frame's procedure (the return edge's function).
	Callee string
	// EdgeIDs is the exact segment: program edge IDs from the call
	// edge through the return edge, in path order.
	EdgeIDs []int32
	// Live is the projected live context (sorted): the caller's live
	// lvalues that may alias the callee's transitive mod set.
	Live []cfa.Lvalue
	// Dec[k] is the decision for segment edge k (offset from the call
	// edge).
	Dec []Decision
	// TakenOffs lists the offsets with DecTaken, in path order — the
	// O(slice-contribution) fast-apply path.
	TakenOffs []int32
	// Kills and Adds are the net live-set transfer: after the frame,
	// live = (live \ Kills) ∪ Adds.
	Kills, Adds []cfa.Lvalue
	// Effects are the frame's Stats deltas.
	Effects Effects

	segHash, liveHash uint64
}

// approxBytes estimates the summary's resident footprint for the
// summ_memo_bytes gauge (slice headers + payload; lvalue strings are
// interned program names, counted by header only).
func (s *Summary) approxBytes() int64 {
	const lvalSize = 24 // string header + bool, padded
	n := int64(96)      // struct + map overhead
	n += int64(len(s.EdgeIDs))*4 + int64(len(s.Dec)) + int64(len(s.TakenOffs))*4
	n += int64(len(s.Live)+len(s.Kills)+len(s.Adds)) * lvalSize
	return n
}

// Options configures a Table.
type Options struct {
	// StaleReuse is the planted-bug mode: lookups ignore the live
	// context and return the first summary recorded for a segment.
	// Test-only; see the package comment.
	StaleReuse bool
}

// Table is the memo. One Table belongs to one (program, slicer
// options) pair: decisions depend on the slicer's Take configuration,
// so core builds the table alongside the Slicer and never shares it
// across option sets.
type Table struct {
	alias *alias.Info
	mods  *modref.Info
	opts  Options

	mu      sync.Mutex
	entries map[uint64][]*Summary // keyed by segHash; buckets verified exactly
	bytes   int64
}

// NewTable builds an empty summary table over the program's alias and
// mod-ref analyses.
func NewTable(al *alias.Info, mr *modref.Info, opts Options) *Table {
	return &Table{
		alias:   al,
		mods:    mr,
		opts:    opts,
		entries: make(map[uint64][]*Summary),
	}
}

// Project returns the sorted projection of live onto the lvalues the
// callee's transitive mod set may touch, plus its fingerprint. This is
// the context half of the summary key: live lvalues outside the
// projection cannot influence any decision inside the frame (no edge
// of the callee or its transitive callees can write anything that
// may-aliases them), so they are deliberately excluded to maximize
// reuse across call sites.
func (t *Table) Project(callee string, live cfa.LvalSet) ([]cfa.Lvalue, uint64) {
	modSet := t.mods.ModsVarSet(callee)
	var proj []cfa.Lvalue
	for l := range live {
		if t.alias.Touches(l, modSet) {
			proj = append(proj, l)
		}
	}
	sortLvals(proj)
	return proj, hashLvals(proj)
}

// Lookup returns the summary for (segment, live context), or nil. The
// segment is passed both as a hash and as the exact edge-ID sequence;
// candidates are verified element-wise so the result is never a hash
// collision. In StaleReuse mode the live context is (unsoundly)
// ignored.
func (t *Table) Lookup(segHash uint64, edgeIDs []int32, liveHash uint64, proj []cfa.Lvalue) *Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, cand := range t.entries[segHash] {
		if !equalIDs(cand.EdgeIDs, edgeIDs) {
			continue
		}
		if t.opts.StaleReuse {
			mHits.Inc()
			return cand
		}
		if cand.liveHash == liveHash && equalLvals(cand.Live, proj) {
			mHits.Inc()
			return cand
		}
	}
	mMisses.Inc()
	return nil
}

// Insert stores a freshly recorded summary. Duplicate contexts (two
// goroutines racing on the same miss) are dropped; the first entry
// wins so every caller sees one canonical summary per context.
func (t *Table) Insert(sum *Summary, segHash, liveHash uint64) {
	sum.segHash, sum.liveHash = segHash, liveHash
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, cand := range t.entries[segHash] {
		if equalIDs(cand.EdgeIDs, sum.EdgeIDs) && cand.liveHash == liveHash && equalLvals(cand.Live, sum.Live) {
			return
		}
	}
	t.entries[segHash] = append(t.entries[segHash], sum)
	t.bytes += sum.approxBytes()
	mMemoBytes.Set(t.bytes)
}

// Export snapshots every memoized summary. The returned summaries are
// the table's own (immutable after Insert), so callers may serialize
// them concurrently with live lookups; slicerd's warm-state snapshot
// (internal/service) is the intended consumer.
func (t *Table) Export() []*Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Summary, 0, 16)
	for _, b := range t.entries {
		out = append(out, b...)
	}
	return out
}

// Restore validates and inserts a deserialized summary, recomputing
// both key hashes and the TakenOffs fast-apply vector from scratch so
// nothing stale rides in from the snapshot. It is the summary half of
// the "a corrupt or stale snapshot can only cause misses" contract: a
// record that fails any structural check is dropped (the caller counts
// it), and an accepted record still goes through Lookup's element-wise
// key verification like any live insert. The caller must have verified
// the summary against the program it will be used with (slicerd checks
// the CFA fingerprint and edge-ID range); Restore checks everything
// internal to the record.
func (t *Table) Restore(sum *Summary) bool {
	if sum == nil || sum.Callee == "" || len(sum.EdgeIDs) == 0 {
		return false
	}
	if len(sum.Dec) != len(sum.EdgeIDs) {
		return false
	}
	for _, d := range sum.Dec {
		if d > DecSkipChain {
			return false
		}
	}
	// The live context must be sorted and duplicate-free, exactly as
	// Project emits it, or element-wise comparison against a live
	// lookup could never match (and a forged order could).
	for i := 1; i < len(sum.Live); i++ {
		if !lvalLess(sum.Live[i-1], sum.Live[i]) {
			return false
		}
	}
	e := sum.Effects
	if e.TakenAssign < 0 || e.TakenAssume < 0 || e.TakenCall < 0 ||
		e.TakenReturn < 0 || e.SkippedFrames < 0 || e.SkippedGuardChains < 0 {
		return false
	}
	// Rebuild TakenOffs from the decision vector instead of trusting
	// the snapshot's copy: the two can then never disagree.
	sum.TakenOffs = sum.TakenOffs[:0]
	for off, d := range sum.Dec {
		if d == DecTaken {
			sum.TakenOffs = append(sum.TakenOffs, int32(off))
		}
	}
	var segHash uint64
	for _, id := range sum.EdgeIDs {
		segHash = HashEdgeID(segHash, id)
	}
	t.Insert(sum, segHash, hashLvals(sum.Live))
	return true
}

// Len returns the number of memoized contexts.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, b := range t.entries {
		n += len(b)
	}
	return n
}

// Bytes returns the approximate resident footprint of the memo.
func (t *Table) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes
}

// ---------------------------------------------------------------------------
// Hashing and comparison helpers

// HashEdgeID folds one segment edge ID into a running hash
// (splitmix64-style finalizer per step; the zero seed is a valid
// start).
func HashEdgeID(h uint64, id int32) uint64 {
	x := h + 0x9e3779b97f4a7c15 + uint64(uint32(id))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashLvals(ls []cfa.Lvalue) uint64 {
	var h uint64 = 0x243f6a8885a308d3
	for _, l := range ls {
		for i := 0; i < len(l.Var); i++ {
			h = (h ^ uint64(l.Var[i])) * 0x100000001b3
		}
		if l.Deref {
			h = (h ^ '*') * 0x100000001b3
		}
		h = (h ^ 0x1f) * 0x100000001b3
	}
	return h
}

func sortLvals(ls []cfa.Lvalue) {
	// Insertion sort: projections are tiny (a handful of lvalues) and
	// this avoids a sort.Slice closure allocation on the hot path.
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && lvalLess(ls[j], ls[j-1]); j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

func lvalLess(a, b cfa.Lvalue) bool {
	if a.Var != b.Var {
		return a.Var < b.Var
	}
	return !a.Deref && b.Deref
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalLvals(a, b []cfa.Lvalue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
