package summ_test

import (
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/modref"
	"pathslice/internal/summ"
)

const src = `
int x;
int y;
int z;

void bump() {
  x = x + 1;
}

void noise() {
  y = y * 2;
}

void main() {
  x = 0;
  bump();
  noise();
  if (x > 3) {
    error;
  }
}
`

func newTable(t *testing.T, opts summ.Options) *summ.Table {
	t.Helper()
	prog := compile.MustSource(src)
	al := alias.Analyze(prog)
	mr := modref.Analyze(prog, al)
	return summ.NewTable(al, mr, opts)
}

func lv(name string) cfa.Lvalue { return cfa.Lvalue{Var: name} }

func liveSet(names ...string) cfa.LvalSet {
	s := cfa.NewLvalSet()
	for _, n := range names {
		s.Add(lv(n))
	}
	return s
}

// TestProjectFiltersUntouched: the context key keeps only live lvalues
// the callee's transitive mod set can touch, so irrelevant liveness
// cannot fragment the memo.
func TestProjectFiltersUntouched(t *testing.T) {
	tbl := newTable(t, summ.Options{})
	proj, _ := tbl.Project("bump", liveSet("x", "y", "z"))
	if len(proj) != 1 || proj[0] != lv("x") {
		t.Fatalf("bump projection = %v, want [x]", proj)
	}
	projN, _ := tbl.Project("noise", liveSet("x", "z"))
	if len(projN) != 0 {
		t.Fatalf("noise projection = %v, want empty", projN)
	}
	// Same projection → same fingerprint, regardless of what else is
	// live.
	_, h1 := tbl.Project("bump", liveSet("x"))
	_, h2 := tbl.Project("bump", liveSet("x", "y"))
	if h1 != h2 {
		t.Fatal("projection hash must ignore untouched lvalues")
	}
	_, h3 := tbl.Project("bump", liveSet("y"))
	if h3 == h1 {
		t.Fatal("distinct projections must fingerprint differently")
	}
}

func seg(ids ...int32) ([]int32, uint64) {
	var h uint64
	for _, id := range ids {
		h = summ.HashEdgeID(h, id)
	}
	return ids, h
}

func TestLookupInsertRoundtrip(t *testing.T) {
	tbl := newTable(t, summ.Options{})
	ids, segHash := seg(3, 4, 5)
	projA, liveA := tbl.Project("bump", liveSet("x"))
	if got := tbl.Lookup(segHash, ids, liveA, projA); got != nil {
		t.Fatal("empty table must miss")
	}
	sum := &summ.Summary{Callee: "bump", EdgeIDs: ids, Live: projA, Dec: []summ.Decision{summ.DecTaken, summ.DecNotTaken, summ.DecTaken}}
	tbl.Insert(sum, segHash, liveA)
	if got := tbl.Lookup(segHash, ids, liveA, projA); got != sum {
		t.Fatal("exact context must hit")
	}
	// A different live context over the same segment must miss…
	projB, liveB := tbl.Project("bump", liveSet())
	if got := tbl.Lookup(segHash, ids, liveB, projB); got != nil {
		t.Fatal("different live context must miss")
	}
	// …and a different segment must miss even with the same context.
	ids2, segHash2 := seg(3, 4, 6)
	if got := tbl.Lookup(segHash2, ids2, liveA, projA); got != nil {
		t.Fatal("different segment must miss")
	}
	// The exact verify rejects an ID sequence that disagrees with the
	// hash bucket it landed in.
	if got := tbl.Lookup(segHash, ids2, liveA, projA); got != nil {
		t.Fatal("edge-ID mismatch must be rejected regardless of hash")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
	if tbl.Bytes() <= 0 {
		t.Fatal("Bytes must account for the stored summary")
	}
	// Duplicate insert dedupes.
	before := tbl.Bytes()
	tbl.Insert(&summ.Summary{Callee: "bump", EdgeIDs: ids, Live: projA}, segHash, liveA)
	if tbl.Len() != 1 || tbl.Bytes() != before {
		t.Fatal("duplicate context must not be stored twice")
	}
}

// TestStaleReuseIgnoresContext pins the planted-bug mode's behavior:
// the first context recorded for a segment answers every live set.
func TestStaleReuseIgnoresContext(t *testing.T) {
	tbl := newTable(t, summ.Options{StaleReuse: true})
	ids, segHash := seg(7, 8)
	projA, liveA := tbl.Project("bump", liveSet("x"))
	sum := &summ.Summary{Callee: "bump", EdgeIDs: ids, Live: projA}
	tbl.Insert(sum, segHash, liveA)
	projB, liveB := tbl.Project("bump", liveSet())
	if got := tbl.Lookup(segHash, ids, liveB, projB); got != sum {
		t.Fatal("StaleReuse must (unsoundly) hit across live contexts")
	}
}

func TestHashEdgeID(t *testing.T) {
	_, a := seg(1, 2, 3)
	_, b := seg(3, 2, 1)
	_, c := seg(1, 2, 3)
	if a == b {
		t.Fatal("segment hash must be order-sensitive")
	}
	if a != c {
		t.Fatal("segment hash must be deterministic")
	}
}
