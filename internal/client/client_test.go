package client

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pathslice/internal/service"
)

const srcBug = `
int a;
void main() {
  int x = 3;
  if (a == 0) {
    error;
  }
}
`

func newClient(t *testing.T, url string, mutate func(*Options)) *Client {
	t.Helper()
	opts := Options{
		BaseURL:     url,
		MaxRetries:  4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        42,
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func writeBody(w http.ResponseWriter, status int, v any) {
	raw, _ := json.Marshal(v)
	sum := sha256.Sum256(raw)
	w.Header().Set("X-Checksum-SHA256", hex.EncodeToString(sum[:]))
	w.WriteHeader(status)
	w.Write(raw)
}

func TestSliceSuccessVerifiesAndCorrelates(t *testing.T) {
	var gotRID, gotHash atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotRID.Store(r.Header.Get("X-Request-ID"))
		gotHash.Store(r.Header.Get("X-Content-SHA256"))
		writeBody(w, http.StatusOK, service.SliceResponse{
			RequestID: r.Header.Get("X-Request-ID"), Verdict: service.VerdictOK,
		})
	}))
	defer srv.Close()

	c := newClient(t, srv.URL, nil)
	resp, err := c.Slice(context.Background(), &service.SliceRequest{Source: srcBug})
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if resp.Verdict != service.VerdictOK {
		t.Fatalf("verdict = %q", resp.Verdict)
	}
	if rid, _ := gotRID.Load().(string); rid == "" || resp.RequestID != rid {
		t.Fatalf("request id not correlated: sent %q, got back %q", rid, resp.RequestID)
	}
	if h, _ := gotHash.Load().(string); len(h) != 64 {
		t.Fatalf("X-Content-SHA256 not sent (got %q)", h)
	}
}

func TestRetriesShedThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeBody(w, http.StatusServiceUnavailable, service.ErrorResponse{
				Error: "overloaded", Message: "busy", Degraded: true,
				Verdict: service.VerdictUndecided, ExitCode: service.ExitUndecided,
				RetryAfterMS: 1,
			})
			return
		}
		writeBody(w, http.StatusOK, service.SliceResponse{Verdict: service.VerdictOK})
	}))
	defer srv.Close()

	c := newClient(t, srv.URL, nil)
	if _, err := c.Slice(context.Background(), &service.SliceRequest{Source: "x"}); err != nil {
		t.Fatalf("Slice after sheds: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("calls = %d, want 3 (2 sheds + 1 success)", n)
	}
}

func TestPermanentErrorsDoNotRetry(t *testing.T) {
	cases := []struct {
		name   string
		status int
		kind   string
		check  func(error) bool
	}{
		{"invalid_program", http.StatusUnprocessableEntity, "invalid_program", nil},
		{"unauthorized", http.StatusUnauthorized, "unauthorized", IsUnauthorized},
		{"bad_request", http.StatusBadRequest, "bad_request", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int32
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				writeBody(w, tc.status, service.ErrorResponse{Error: tc.kind, Message: tc.name})
			}))
			defer srv.Close()
			c := newClient(t, srv.URL, nil)
			_, err := c.Slice(context.Background(), &service.SliceRequest{Source: "x"})
			var e *Error
			if !AsError(err, &e) || e.Kind != tc.kind || e.Status != tc.status {
				t.Fatalf("err = %v, want typed %s/%d", err, tc.kind, tc.status)
			}
			if e.Retryable() {
				t.Fatalf("%s must not be retryable", tc.kind)
			}
			if n := calls.Load(); n != 1 {
				t.Fatalf("calls = %d, want 1 (no retries)", n)
			}
			if tc.check != nil && !tc.check(err) {
				t.Fatalf("predicate failed for %v", err)
			}
		})
	}
}

func TestChecksumMismatchRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Valid JSON, wrong checksum: simulates in-flight corruption
			// of a response that still parses.
			raw, _ := json.Marshal(service.SliceResponse{Verdict: service.VerdictBug, ExitCode: service.ExitBug})
			w.Header().Set("X-Checksum-SHA256", "deadbeef")
			w.WriteHeader(http.StatusOK)
			w.Write(raw)
			return
		}
		writeBody(w, http.StatusOK, service.SliceResponse{Verdict: service.VerdictOK})
	}))
	defer srv.Close()

	c := newClient(t, srv.URL, nil)
	resp, err := c.Slice(context.Background(), &service.SliceRequest{Source: "x"})
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if resp.Verdict != service.VerdictOK {
		t.Fatalf("corrupted verdict leaked through: %q", resp.Verdict)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("calls = %d, want 2", n)
	}
}

func TestGarbageBodyRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"verdic`)) // truncated mid-body
			return
		}
		writeBody(w, http.StatusOK, service.SliceResponse{Verdict: service.VerdictOK})
	}))
	defer srv.Close()

	c := newClient(t, srv.URL, nil)
	if _, err := c.Slice(context.Background(), &service.SliceRequest{Source: "x"}); err != nil {
		t.Fatalf("Slice: %v", err)
	}
}

func TestHedgeWinsOverStalledPrimary(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First request stalls until the test ends.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		writeBody(w, http.StatusOK, service.SliceResponse{Verdict: service.VerdictOK})
	}))
	defer srv.Close()
	defer close(release)

	c := newClient(t, srv.URL, func(o *Options) { o.Hedge = 10 * time.Millisecond })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.Slice(ctx, &service.SliceRequest{Source: "x"})
	if err != nil {
		t.Fatalf("hedged Slice: %v", err)
	}
	if resp.Verdict != service.VerdictOK {
		t.Fatalf("verdict = %q", resp.Verdict)
	}
	if n := calls.Load(); n < 2 {
		t.Fatalf("calls = %d, want hedge to have fired", n)
	}
}

func TestHealthReportsDraining(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeBody(w, http.StatusServiceUnavailable, service.HealthResponse{
			Status: "draining", Draining: true, UptimeMS: 5,
		})
	}))
	defer srv.Close()

	c := newClient(t, srv.URL, func(o *Options) { o.MaxRetries = -1 })
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health of draining server: %v", err)
	}
	if !h.Draining || h.Status != "draining" {
		t.Fatalf("health = %+v, want draining", h)
	}
}

func TestNetworkErrorIsTypedAndRetried(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listening anymore

	c := newClient(t, url, func(o *Options) { o.MaxRetries = 2 })
	_, err := c.Slice(context.Background(), &service.SliceRequest{Source: "x"})
	var e *Error
	if !AsError(err, &e) || e.Kind != KindNetwork {
		t.Fatalf("err = %v, want network kind", err)
	}
	if !e.Retryable() {
		t.Fatal("network errors must be retryable")
	}
}

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		e    Error
		want int
	}{
		{Error{Kind: KindOverloaded, ExitCode: service.ExitUndecided}, service.ExitUndecided},
		{Error{Kind: "bad_request", Status: 400}, service.ExitUsage},
		{Error{Kind: KindUnauthorized, Status: 401}, service.ExitUsage},
		{Error{Kind: KindNetwork}, service.ExitInternal},
		{Error{Kind: KindChecksum}, service.ExitInternal},
	}
	for _, tc := range cases {
		if got := tc.e.Exit(); got != tc.want {
			t.Errorf("Exit(%s) = %d, want %d", tc.e.Kind, got, tc.want)
		}
	}
}

func TestAgainstRealServer(t *testing.T) {
	s := service.New(service.Config{AuthToken: "sesame"})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Wrong token: typed 401.
	bad := newClient(t, srv.URL, func(o *Options) { o.AuthToken = "wrong"; o.MaxRetries = -1 })
	if _, err := bad.Slice(context.Background(), &service.SliceRequest{Source: srcBug}); !IsUnauthorized(err) {
		t.Fatalf("wrong token: err = %v, want unauthorized", err)
	}

	c := newClient(t, srv.URL, func(o *Options) { o.AuthToken = "sesame" })
	resp, err := c.Slice(context.Background(), &service.SliceRequest{Source: srcBug})
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	if resp.Verdict != service.VerdictBug || resp.ExitCode != service.ExitBug {
		t.Fatalf("verdict = %q/%d, want bug/3", resp.Verdict, resp.ExitCode)
	}
	if resp.RequestID == "" {
		t.Fatal("response missing request_id")
	}

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Requests < 1 {
		t.Fatalf("stats.requests = %d", st.Requests)
	}

	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("Health = %+v, %v", h, err)
	}

	// Drain: health flips, sessions are refused with the typed kind.
	s.StartDrain()
	h, err = c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health while draining: %v", err)
	}
	if !h.Draining {
		t.Fatalf("health = %+v, want draining", h)
	}
	one := newClient(t, srv.URL, func(o *Options) { o.AuthToken = "sesame"; o.MaxRetries = -1 })
	_, err = one.Slice(context.Background(), &service.SliceRequest{Source: srcBug})
	var e *Error
	if !AsError(err, &e) || e.Kind != KindDraining || e.Verdict != service.VerdictUndecided {
		t.Fatalf("draining slice: err = %v, want typed draining/undecided", err)
	}
}
