package client

import (
	"errors"
	"fmt"
	"net/http"

	"pathslice/internal/service"
)

// Error kinds. Server-raised kinds are the ErrorResponse.Error strings
// verbatim (service/api.go); the client adds kinds for failures that
// never reached a typed server answer.
const (
	// KindNetwork: the exchange failed below HTTP — dial error,
	// connection reset, stall past the context deadline, truncated
	// body. Retryable.
	KindNetwork = "network"
	// KindChecksum: the response body does not match its
	// X-Checksum-SHA256 header — bytes were corrupted in transit.
	// Retryable (a re-send takes a fresh path through the fault).
	KindChecksum = "checksum"
	// KindDecode: the body is undecodable as its wire type (strict
	// decoding), with no checksum header to blame first — also
	// transport damage. Retryable.
	KindDecode = "decode"
	// KindInternal: a client-side failure (request encoding). Not
	// retryable — retrying re-runs the same bug.
	KindInternal = "internal"

	// Server-raised kinds, re-exported for matching convenience.
	KindOverloaded   = "overloaded"
	KindDraining     = "draining"
	KindUnauthorized = "unauthorized"
	KindIntegrity    = "integrity"
)

// Error is the typed failure of one logical API call: either the
// server's ErrorResponse lifted off the wire, or a client-side kind
// for failures beneath the protocol. It mirrors the shared exit-code
// contract (docs/ROBUSTNESS.md): Exit() maps any failure to the same
// codes the CLIs use, and shed/drain errors carry the server's
// "undecided" verdict — a sound refusal, never a wrong answer.
type Error struct {
	// Kind is the stable machine-readable failure class: a Kind*
	// constant or a server ErrorResponse.Error string.
	Kind string
	// Status is the HTTP status (0 when nothing was received).
	Status int
	// Message is human-readable detail.
	Message string
	// Verdict, ExitCode, Degraded and RetryAfterMS carry the typed
	// 503 body of sheds and drains (docs/API.md).
	Verdict      string
	ExitCode     int
	Degraded     bool
	RetryAfterMS int
	// RequestID correlates the failure with server-side JSONL traces.
	RequestID string

	// body retains undecodable payloads for salvage (Health re-decodes
	// a draining 503).
	body []byte
}

func (e *Error) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("slicerd: %s (HTTP %d): %s", e.Kind, e.Status, e.Message)
	}
	return fmt.Sprintf("slicerd: %s: %s", e.Kind, e.Message)
}

// Retryable reports whether another attempt can succeed: transport
// faults, corruption, load sheds, drains, and server 5xx. Permanent
// kinds — malformed requests, invalid programs, bad credentials —
// would fail identically forever.
func (e *Error) Retryable() bool {
	switch e.Kind {
	case KindNetwork, KindChecksum, KindDecode, KindOverloaded, KindDraining, KindIntegrity:
		return true
	case KindInternal:
		// Server-side "internal" (a 500) is worth a retry; the
		// client-side encoding failure (Status 0) is not.
		return e.Status >= http.StatusInternalServerError
	}
	return e.Status >= http.StatusInternalServerError
}

// Exit maps the failure to the shared CLI exit codes: the server's
// code when the body carried one (sheds and drains say 4 "undecided"),
// 2 for caller mistakes, 1 for everything infrastructural.
func (e *Error) Exit() int {
	if e.ExitCode != 0 {
		return e.ExitCode
	}
	switch e.Kind {
	case "bad_request", "too_large", "method_not_allowed", KindUnauthorized:
		return service.ExitUsage
	case "invalid_program", "invalid_trace":
		return service.ExitUsage
	}
	return service.ExitInternal
}

// AsError unwraps err into *Error (errors.As with the right target).
func AsError(err error, target **Error) bool { return errors.As(err, target) }

// IsShed reports a typed load-shed or drain refusal — the sound
// "undecided" give-up worth retrying against another replica.
func IsShed(err error) bool {
	var e *Error
	return errors.As(err, &e) && (e.Kind == KindOverloaded || e.Kind == KindDraining)
}

// IsUnauthorized reports a 401 bearer-token rejection.
func IsUnauthorized(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Kind == KindUnauthorized
}
