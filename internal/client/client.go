// Package client is the Go client for the slicerd HTTP API
// (docs/API.md): typed wrappers over POST /v1/slice and /v1/check plus
// the GET endpoints, with the retry discipline a flaky network
// demands and the verification a *correctness* service demands.
//
// The design follows the same degradation contract as the server
// (docs/ROBUSTNESS.md): every failure the transport can produce maps
// to a typed *Error that is either retryable (network faults, load
// sheds, drains, corrupted bytes, 5xx) or permanent (bad requests,
// invalid programs, bad credentials). Retryable failures are retried
// with capped exponential backoff and deterministic seeded jitter,
// honoring the server's retry_after_ms hint on sheds; an optional
// hedged second request bounds tail latency when a connection stalls.
//
// Integrity is end to end: requests carry an X-Content-SHA256 body
// hash the server verifies before decoding, responses carry an
// X-Checksum-SHA256 the client verifies before trusting a verdict,
// and response bodies are decoded strictly (unknown fields are an
// error). A proxy that flips a byte therefore produces a retryable
// typed error — never a silently altered verdict. cmd/chaossmoke
// drives exactly that scenario through internal/faults' wire proxy.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"pathslice/internal/obs"
	"pathslice/internal/service"
)

// Registry metrics (docs/OBSERVABILITY.md).
var (
	mRetries   = obs.Default().Counter("client_retries_total")
	mHedges    = obs.Default().Counter("client_hedges_total")
	mChecksum  = obs.Default().Counter("client_checksum_failures_total")
	mRequests  = obs.Default().Counter("client_requests_total")
	mFailures  = obs.Default().Counter("client_failures_total")
	mAttemptNS = obs.Default().Histogram("client_attempt_ns")
)

// Options configures a Client. The zero value of every field takes the
// default documented on it; BaseURL is required.
type Options struct {
	// BaseURL is the daemon's API root, e.g. "http://127.0.0.1:7463"
	// (required). Use "https://..." with a TLS-serving daemon.
	BaseURL string
	// HTTPClient overrides the transport (default: a dedicated
	// http.Client; pass one with a custom TLS config to trust a
	// self-signed -tls-cert).
	HTTPClient *http.Client
	// AuthToken, when set, is sent as `Authorization: Bearer <token>`.
	AuthToken string
	// MaxRetries bounds retry attempts after the first try (default 4;
	// negative disables retries).
	MaxRetries int
	// BaseBackoff is the first retry delay (default 50ms); MaxBackoff
	// caps the exponential growth (default 2s). The server's
	// retry_after_ms hint overrides a smaller computed delay.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Hedge, when positive, fires a second identical request if the
	// first has not answered within this duration; the first usable
	// answer wins. Safe because slice/check are idempotent reads of
	// derived state.
	Hedge time.Duration
	// Seed makes the backoff jitter deterministic (0 seeds from the
	// clock). Chaos tests pin it so schedules replay.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = uint64(time.Now().UnixNano())
	}
	return o
}

// Client is a slicerd API client. Safe for concurrent use.
type Client struct {
	opts Options

	mu  sync.Mutex
	rng *rand.Rand
	seq int64
}

// New builds a Client. Returns an error only for a missing BaseURL.
func New(opts Options) (*Client, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL is required")
	}
	opts = opts.withDefaults()
	return &Client{
		opts: opts,
		rng:  rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x9e3779b97f4a7c15)),
	}, nil
}

// SetBaseURL repoints the client (chaos tests restart daemons on new
// ports; production callers re-resolve a moved endpoint).
func (c *Client) SetBaseURL(u string) {
	c.mu.Lock()
	c.opts.BaseURL = u
	c.mu.Unlock()
}

func (c *Client) baseURL() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.BaseURL
}

// Slice calls POST /v1/slice.
func (c *Client) Slice(ctx context.Context, req *service.SliceRequest) (*service.SliceResponse, error) {
	var resp service.SliceResponse
	if err := c.call(ctx, http.MethodPost, "/v1/slice", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Check calls POST /v1/check.
func (c *Client) Check(ctx context.Context, req *service.CheckRequest) (*service.CheckResponse, error) {
	var resp service.CheckResponse
	if err := c.call(ctx, http.MethodPost, "/v1/check", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats calls GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*service.StatsResponse, error) {
	var resp service.StatsResponse
	if err := c.call(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health calls GET /v1/healthz. A draining daemon answers HTTP 503
// with a well-formed HealthResponse; that is returned as a response,
// not an error, so callers can distinguish "draining" from "down".
func (c *Client) Health(ctx context.Context) (*service.HealthResponse, error) {
	var resp service.HealthResponse
	err := c.call(ctx, http.MethodGet, "/v1/healthz", nil, &resp)
	if err != nil {
		var e *Error
		if AsError(err, &e) && e.Status == http.StatusServiceUnavailable && e.Kind == KindDecode {
			// 503 with a HealthResponse body: re-decode as health.
			if jerr := strictDecode(e.body, &resp); jerr == nil {
				return &resp, nil
			}
		}
		return nil, err
	}
	return &resp, nil
}

// ---------------------------------------------------------------------------
// Retry engine

// call runs one logical API call: marshal once, then up to
// 1+MaxRetries attempts (each possibly hedged), with backoff between
// retryable failures. One request ID correlates every attempt of the
// logical call in the server's JSONL trace.
func (c *Client) call(ctx context.Context, method, path string, req, resp any) error {
	mRequests.Inc()
	var body []byte
	if req != nil {
		var err error
		body, err = json.Marshal(req)
		if err != nil {
			return &Error{Kind: KindInternal, Message: "encoding request: " + err.Error()}
		}
	}
	rid := c.newRequestID()

	var last error
	for attempt := 0; ; attempt++ {
		err := c.attemptHedged(ctx, method, path, rid, body, resp)
		if err == nil {
			return nil
		}
		last = err
		var e *Error
		if !AsError(err, &e) || !e.Retryable() || attempt >= c.opts.MaxRetries {
			mFailures.Inc()
			return last
		}
		mRetries.Inc()
		if werr := c.sleep(ctx, c.backoff(attempt, e.RetryAfterMS)); werr != nil {
			mFailures.Inc()
			return last // the caller's deadline beats another attempt
		}
	}
}

// attemptHedged runs one attempt, racing a hedge copy if the primary
// has not answered within Options.Hedge. The loser's context is
// cancelled; the first usable result (success or permanent error)
// wins, and if both fail retryably the primary's error is reported.
func (c *Client) attemptHedged(ctx context.Context, method, path, rid string, body []byte, resp any) error {
	if c.opts.Hedge <= 0 || method != http.MethodPost {
		return c.attempt(ctx, method, path, rid, body, resp)
	}
	type outcome struct {
		err     error
		primary bool
	}
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	results := make(chan outcome, 2)
	launch := func(primary bool, dst any) {
		results <- outcome{err: c.attempt(actx, method, path, rid, body, dst), primary: primary}
	}
	go launch(true, resp)

	hedgeTimer := time.NewTimer(c.opts.Hedge)
	defer hedgeTimer.Stop()
	hedged := false
	// The hedge decodes into its own value: two goroutines must not
	// race on resp. The winner's copy is moved into resp at the end.
	hedgeResp := newLike(resp)

	var firstErr error
	for seen := 0; seen < 2; {
		select {
		case <-hedgeTimer.C:
			if !hedged {
				hedged = true
				mHedges.Inc()
				go launch(false, hedgeResp)
			}
		case out := <-results:
			seen++
			if out.err == nil {
				if !out.primary {
					moveValue(resp, hedgeResp)
				}
				return nil
			}
			var e *Error
			if AsError(out.err, &e) && !e.Retryable() {
				return out.err
			}
			if firstErr == nil || out.primary {
				firstErr = out.err
			}
			if !hedged {
				// Primary failed before the hedge fired: no point
				// waiting out the timer, report and let call() retry.
				return firstErr
			}
		case <-ctx.Done():
			return &Error{Kind: KindNetwork, Message: ctx.Err().Error()}
		}
	}
	return firstErr
}

// attempt is one wire exchange: send, verify the response checksum,
// decode strictly, classify.
func (c *Client) attempt(ctx context.Context, method, path, rid string, body []byte, resp any) error {
	start := time.Now()
	defer func() { mAttemptNS.ObserveDuration(time.Since(start)) }()

	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.baseURL()+path, rd)
	if err != nil {
		return &Error{Kind: KindInternal, Message: err.Error()}
	}
	hreq.Header.Set("X-Request-ID", rid)
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
		sum := sha256.Sum256(body)
		hreq.Header.Set("X-Content-SHA256", hex.EncodeToString(sum[:]))
	}
	if c.opts.AuthToken != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.opts.AuthToken)
	}

	hresp, err := c.opts.HTTPClient.Do(hreq)
	if err != nil {
		return &Error{Kind: KindNetwork, Message: err.Error(), RequestID: rid}
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return &Error{Kind: KindNetwork, Status: hresp.StatusCode, Message: "reading response: " + err.Error(), RequestID: rid}
	}
	if want := hresp.Header.Get("X-Checksum-SHA256"); want != "" {
		sum := sha256.Sum256(raw)
		if got := hex.EncodeToString(sum[:]); got != want {
			mChecksum.Inc()
			return &Error{
				Kind: KindChecksum, Status: hresp.StatusCode, RequestID: rid,
				Message: fmt.Sprintf("response body hash %s != header %s (corrupted in transit)", got, want),
			}
		}
	}
	if hresp.StatusCode == http.StatusOK {
		if err := strictDecode(raw, resp); err != nil {
			// An OK status with an undecodable body is transport
			// damage (the server encodes wire types by construction).
			return &Error{Kind: KindDecode, Status: hresp.StatusCode, Message: err.Error(), RequestID: rid, body: raw}
		}
		return nil
	}
	var eresp service.ErrorResponse
	if err := strictDecode(raw, &eresp); err != nil || eresp.Error == "" {
		return &Error{Kind: KindDecode, Status: hresp.StatusCode, Message: fmt.Sprintf("undecodable %d response", hresp.StatusCode), RequestID: rid, body: raw}
	}
	e := &Error{
		Kind:         eresp.Error,
		Status:       hresp.StatusCode,
		Message:      eresp.Message,
		Verdict:      eresp.Verdict,
		ExitCode:     eresp.ExitCode,
		RetryAfterMS: eresp.RetryAfterMS,
		Degraded:     eresp.Degraded,
		RequestID:    eresp.RequestID,
	}
	if e.RequestID == "" {
		e.RequestID = rid
	}
	return e
}

func strictDecode(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// newLike and moveValue give the hedge goroutine its own decode target
// of the same wire type, so primary and hedge never write one value.
func newLike(v any) any {
	switch v.(type) {
	case *service.SliceResponse:
		return new(service.SliceResponse)
	case *service.CheckResponse:
		return new(service.CheckResponse)
	case *service.StatsResponse:
		return new(service.StatsResponse)
	case *service.HealthResponse:
		return new(service.HealthResponse)
	}
	return new(json.RawMessage)
}

func moveValue(dst, src any) {
	switch d := dst.(type) {
	case *service.SliceResponse:
		*d = *src.(*service.SliceResponse)
	case *service.CheckResponse:
		*d = *src.(*service.CheckResponse)
	case *service.StatsResponse:
		*d = *src.(*service.StatsResponse)
	case *service.HealthResponse:
		*d = *src.(*service.HealthResponse)
	}
}

// backoff computes the pre-attempt delay: exponential with full jitter
// in [delay/2, delay], capped at MaxBackoff, floored by the server's
// retry_after_ms hint (a shed server knows its own recovery horizon
// better than our exponent does).
func (c *Client) backoff(attempt, retryAfterMS int) time.Duration {
	d := c.opts.BaseBackoff << uint(attempt)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int64N(int64(d/2)+1))
	c.mu.Unlock()
	if hint := time.Duration(retryAfterMS) * time.Millisecond; jittered < hint {
		jittered = hint
	}
	return jittered
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// newRequestID mints a correlation ID for one logical call. Every
// retry and hedge of the call shares it, so the server's JSONL trace
// groups the whole story under one ID.
func (c *Client) newRequestID() string {
	c.mu.Lock()
	c.seq++
	id := fmt.Sprintf("cl-%08x-%06d", uint32(c.rng.Uint64()), c.seq)
	c.mu.Unlock()
	return id
}
