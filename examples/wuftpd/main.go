// The wuftpd bug of the paper's Figure 4, as a MiniC program.
//
// ftpd_popen can return a NULL file pointer (when getrlimit, which the
// checker does not model, returns nonzero), and statfilecmd calls fgets
// on the result without checking it. The instrumented program is
// verified with the CEGAR checker; path slicing reduces the
// counterexample to the handful of operations a human needs to read.
package main

import (
	"fmt"
	"log"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/instrument"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
)

const wuftpd = `
// getrlimit is unmodeled: it can return anything.
int getrlimit() {
  return nondet();
}

int ftpd_popen() {
  int iop = fopen();
  int tmp = getrlimit();
  if (tmp != 0) {
    return 0;          // NULL file pointer
  }
  return iop;
}

void statfilecmd() {
  int fin = ftpd_popen();
  int guard = 1;
  while (guard == 1) {
    int tmp2 = fgets(fin);   // BUG: fin may be NULL here
    if (tmp2 == 0) {
      guard = 0;
    }
  }
  if (fin != 0) {
    fclose(fin);
  }
}

void main() {
  statfilecmd();
}
`

func main() {
	astProg, err := parser.Parse([]byte(wuftpd))
	if err != nil {
		log.Fatal(err)
	}
	ins, err := instrument.Instrument(astProg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented: clusters %v, %d sites\n", ins.Clusters, ins.TotalSites)

	for _, cl := range ins.Clusters {
		prog, err := instrument.ForCluster(ins.Prog, cl.Function)
		if err != nil {
			log.Fatal(err)
		}
		info, err := types.Check(prog)
		if err != nil {
			log.Fatal(err)
		}
		cprog, err := cfa.Build(info)
		if err != nil {
			log.Fatal(err)
		}
		checker := cegar.New(cprog, cegar.Options{UseSlicing: true})
		for _, loc := range cprog.ErrorLocs() {
			r := checker.Check(loc)
			fmt.Printf("cluster %s, %s: %s (refinements %d)\n",
				cl.Function, loc, r.Verdict, r.Refinements)
			if r.Verdict == cegar.VerdictUnsafe {
				fmt.Printf("  raw counterexample: %d edges; sliced witness: %d edges:\n",
					len(r.RawCounterexample), len(r.Witness))
				fmt.Print(indent(r.Witness.String()))
			}
		}
	}
	fmt.Println("\nAs in the paper: fgets in statfilecmd can fail because ftpd_popen")
	fmt.Println("may return a NULL file pointer when getrlimit is nonzero.")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
