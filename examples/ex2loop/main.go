// Ex2 — the paper's Figure 1 worked example, both variants.
//
// Without the shaded code, the target is reachable, but every feasible
// path must cross a 1000-iteration loop: a candidate path that unrolls
// it once is infeasible, yet its SLICE is feasible, proving
// reachability without ever finding a feasible full path. With the
// shaded code (x initialized to 0 and set to 1 under the same guard),
// the slice is infeasible for the real reason — the two inconsistent
// branches — with no loop noise for a refiner to drown in.
package main

import (
	"fmt"
	"log"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/smt"
)

const ex2Unshaded = `
int x;
int a;

void f() { skip; }

void main() {
  for (int i = 1; i <= 1000; i = i + 1) {
    f();
  }
  if (a >= 0) {
    if (x == 0) {
      error;
    }
  }
}
`

const ex2Shaded = `
int x = 0;
int a;

void f() { skip; }

void main() {
  if (a >= 0) {
    x = 1;
  }
  for (int i = 1; i <= 1000; i = i + 1) {
    f();
  }
  if (a >= 0) {
    if (x == 0) {
      error;
    }
  }
}
`

func main() {
	run("Ex2 without shaded code (target reachable)", ex2Unshaded)
	fmt.Println()
	run("Ex2 with shaded code (target unreachable)", ex2Shaded)
}

func run(title, src string) {
	fmt.Println("===", title, "===")
	prog, err := compile.Source(src)
	if err != nil {
		log.Fatal(err)
	}
	target := prog.ErrorLocs()[0]
	// The paper's candidate trace: unroll the loop (here twice) and
	// break out early — infeasible as given.
	path := cfa.WalkLongPath(prog, target, 2, 0)
	slicer := core.New(prog)

	full, _ := slicer.CheckFeasibility(path)
	fmt.Printf("candidate path: %d edges, feasibility: %s\n", len(path), full.Status)

	res, err := slicer.Slice(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slice (%d edges, %.1f%% of the path):\n%s",
		res.Stats.SliceEdges, 100*res.Stats.Ratio(), res.Slice)

	sl, _ := slicer.CheckFeasibility(res.Slice)
	fmt.Printf("slice feasibility: %s\n", sl.Status)
	switch sl.Status {
	case smt.StatusSat:
		fmt.Printf("=> COMPLETE: every state in %v reaches the target (modulo termination)\n", sl.Model)
	case smt.StatusUnsat:
		fmt.Println("=> SOUND: the candidate path is infeasible — and the slice exposes the real reason")
	}
}
