// Lockcheck: the second classic typestate property (double lock /
// unlock without lock — the device-driver checks the BLAST line of
// work was built around, the paper's refs [3, 17]) on the same
// machinery: instrument, check with CEGAR, read the sliced witness.
package main

import (
	"fmt"
	"log"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/instrument"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
	"pathslice/internal/report"
)

const driver = `
int mtx;
int npackets;
int got;

void process() {
  int t = 0;
  for (int i = 0; i < 10; i = i + 1) { t = t + i; }
  npackets = npackets + t;
}

void main() {
  got = nondet();
  lock(mtx);
  process();
  if (got != 0) {
    unlock(mtx);
    process();
  }
  // BUG: when got == 0 the lock is still held here, so this second
  // lock double-acquires. The checker finds exactly that case and the
  // slice shows it in four operations.
  lock(mtx);
  unlock(mtx);
}
`

func main() {
	astProg, err := parser.Parse([]byte(driver))
	if err != nil {
		log.Fatal(err)
	}
	ins, err := instrument.InstrumentLocks(astProg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lock property: %d clusters, %d sites\n\n", len(ins.Clusters), ins.TotalSites)
	for _, cl := range ins.Clusters {
		prog, err := instrument.ForCluster(ins.Prog, cl.Function)
		if err != nil {
			log.Fatal(err)
		}
		info, err := types.Check(prog)
		if err != nil {
			log.Fatal(err)
		}
		cprog, err := cfa.Build(info)
		if err != nil {
			log.Fatal(err)
		}
		checker := cegar.New(cprog, cegar.Options{UseSlicing: true})
		for _, loc := range cprog.ErrorLocs() {
			r := checker.Check(loc)
			fmt.Print(report.CheckReport(fmt.Sprintf("%s @ %s", cl.Function, loc), r))
		}
	}
	fmt.Println("\nThe sliced witness shows only the lock operations and the `got` branch —")
	fmt.Println("the packet-processing loops are gone, exactly the paper's value proposition.")
}
