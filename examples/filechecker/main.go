// Filechecker: the full §5 pipeline on a multi-procedure program —
// instrumentation, per-cluster CEGAR checks, and the trace-vs-slice
// statistics the paper's figures are made of. One cluster is safe, one
// has a use-after-close bug, one diverges through the heap (the muh
// phenomenon).
package main

import (
	"fmt"
	"log"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/instrument"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
)

const app = `
int config;

void logmsg() {
  int t = 0;
  for (int i = 0; i < 20; i = i + 1) { t = t + i; }
}

// Correct open/use/close discipline.
void session() {
  int f = fopen();
  if (f != 0) {
    logmsg();
    fgets(f);
    fputs(f);
    fclose(f);
  }
}

// Use after close, guarded by an unrelated config flag.
void flushlog() {
  int f = fopen();
  if (f != 0) {
    fprintf(f);
    fclose(f);
    logmsg();
    if (config > 3) {
      fprintf(f);   // BUG
    }
  }
}

// The muh pattern: the handle takes a detour through the heap, the
// typestate is lost, and the checker reports a (false) alarm.
int slot;
int *table;
void cached() {
  table = &slot;
  int f = fopen();
  if (f != 0) {
    *table = f;
    int h = *table;
    fgets(h);
    fclose(h);
  }
}

void main() {
  config = nondet();
  session();
  flushlog();
  cached();
}
`

func main() {
	astProg, err := parser.Parse([]byte(app))
	if err != nil {
		log.Fatal(err)
	}
	ins, err := instrument.Instrument(astProg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checking %d clusters (%d instrumented sites), like the paper's methodology\n\n",
		len(ins.Clusters), ins.TotalSites)

	for _, cl := range ins.Clusters {
		prog, err := instrument.ForCluster(ins.Prog, cl.Function)
		if err != nil {
			log.Fatal(err)
		}
		info, err := types.Check(prog)
		if err != nil {
			log.Fatal(err)
		}
		cprog, err := cfa.Build(info)
		if err != nil {
			log.Fatal(err)
		}
		checker := cegar.New(cprog, cegar.Options{UseSlicing: true})
		verdict := cegar.VerdictSafe
		refinements := 0
		var traces []cegar.TraceStat
		for _, loc := range cprog.ErrorLocs() {
			r := checker.Check(loc)
			refinements += r.Refinements
			traces = append(traces, r.Traces...)
			if r.Verdict == cegar.VerdictUnsafe {
				verdict = cegar.VerdictUnsafe
				break
			}
			if r.Verdict != cegar.VerdictSafe {
				verdict = r.Verdict
			}
		}
		fmt.Printf("cluster %-9s -> %-7s (refinements %d)\n", cl.Function, verdict, refinements)
		for _, ts := range traces {
			fmt.Printf("    counterexample %4d blocks -> slice %2d blocks (%5.1f%%)\n",
				ts.TraceBlocks, ts.SliceBlocks, ts.RatioPercent())
		}
	}
	fmt.Println("\nsession: safe; flushlog: real use-after-close; cached: alarm from heap imprecision")
}
