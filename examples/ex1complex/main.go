// Ex1 — the paper's Figure 2: path slicing vs static program slicing.
//
// The result of complexfn flows into x on the then-branch, so a sound
// STATIC slice can never drop complexfn. The PATH slice of the
// else-path drops it entirely: without reasoning about complexfn at
// all, it proves that every state with a <= 0 reaches the target
// (provided complexfn terminates).
package main

import (
	"fmt"
	"log"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/progslice"
	"pathslice/internal/smt"
)

const ex1 = `
int a;
int x;

int complexfn(int n) {
  // Stands in for the paper's complex(): think factoring large numbers.
  int r = 1;
  for (int i = 0; i < n; i = i + 1) {
    r = r * r + i;
  }
  return r;
}

void main() {
  a = nondet();
  if (a > 0) {
    x = complexfn(a);
  } else {
    x = 5;
  }
  if (x == 5) {
    error;
  }
}
`

func main() {
	prog, err := compile.Source(ex1)
	if err != nil {
		log.Fatal(err)
	}
	target := prog.ErrorLocs()[0]

	// Static program slice (baseline).
	static := progslice.New(prog).Slice(target)
	fmt.Printf("static slice: %d of %d edges (%.0f%%), retains complexfn: %v\n",
		static.RetainedEdges(), static.ProgramEdges, 100*static.Ratio(),
		static.RetainsFunc(prog, "complexfn"))

	// Path slice of the else-path.
	path := cfa.FindPath(prog, target, cfa.FindOptions{})
	slicer := core.New(prog)
	res, err := slicer.Slice(path)
	if err != nil {
		log.Fatal(err)
	}
	inComplex := false
	for _, e := range res.Slice {
		if e.Src.Fn.Name == "complexfn" {
			inComplex = true
		}
	}
	fmt.Printf("path slice:   %d of %d path edges (%.0f%%), retains complexfn: %v\n",
		res.Stats.SliceEdges, res.Stats.InputEdges, 100*res.Stats.Ratio(), inComplex)
	fmt.Print(res.Slice)

	verdict, _ := slicer.CheckFeasibility(res.Slice)
	if verdict.Status == smt.StatusSat {
		fmt.Printf("slice feasible: any state with a <= 0 reaches the target; witness %v\n",
			verdict.Model)
	} else {
		fmt.Println("unexpected:", verdict.Status)
	}
}
