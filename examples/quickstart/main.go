// Quickstart: compile a MiniC program, get a candidate path to its
// error location, slice it, and decide feasibility — the full public
// pipeline in ~40 lines.
package main

import (
	"fmt"
	"log"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/smt"
)

const program = `
int balance = 100;
int amount;

void audit() {
  // Irrelevant bookkeeping the slicer will drop.
  int total = 0;
  for (int i = 0; i < 50; i = i + 1) {
    total = total + i;
  }
}

void main() {
  amount = nondet();
  audit();
  if (amount > 0) {
    balance = balance - amount;
  }
  if (balance < 0) {
    error;   // can the balance go negative?
  }
}
`

func main() {
	// 1. Source -> control flow automata.
	prog, err := compile.Source(program)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A candidate path to the error location, as an imprecise
	// analysis would produce (possibly infeasible).
	target := prog.ErrorLocs()[0]
	path := cfa.FindPath(prog, target, cfa.FindOptions{})
	fmt.Printf("candidate path: %d edges, %d basic blocks\n", len(path), path.BasicBlocks())

	// 3. Slice it.
	slicer := core.New(prog)
	res, err := slicer.Slice(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path slice: %d edges (%.1f%% of the path)\n",
		res.Stats.SliceEdges, 100*res.Stats.Ratio())
	fmt.Print(res.Slice)

	// 4. Decide feasibility of the slice.
	verdict, _ := slicer.CheckFeasibility(res.Slice)
	switch verdict.Status {
	case smt.StatusSat:
		fmt.Printf("FEASIBLE: the error location is reachable; witness %v\n", verdict.Model)
	case smt.StatusUnsat:
		fmt.Println("INFEASIBLE: this path and all its variants are spurious")
		// 5. A model checker would refine and try another abstract
		// path; here we just grab a longer candidate through the other
		// branch and slice again.
		longPath := cfa.WalkLongPath(prog, target, 2, 0)
		res2, err := slicer.Slice(longPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("second candidate: %d edges -> slice %d edges:\n%s",
			len(longPath), res2.Stats.SliceEdges, res2.Slice)
		v2, _ := slicer.CheckFeasibility(res2.Slice)
		if v2.Status == smt.StatusSat {
			fmt.Printf("FEASIBLE: the bug is real; witness %v\n", v2.Model)
		} else {
			fmt.Println("still", v2.Status)
		}
	default:
		fmt.Println("UNKNOWN")
	}
}
