package pathslice

import (
	"testing"

	"pathslice/internal/bench"
	"pathslice/internal/cegar"
	"pathslice/internal/synth"
)

// acceptProfile is the fixed Table-1-class workload the acceptance
// tests run: the privoxy-class profile at a scale where the CEGAR loop
// performs hundreds of refinement queries per cluster.
func acceptProfile() synth.Profile {
	return synth.PaperProfiles(0.2)[3] // privoxy
}

const acceptMaxWork = 30000

// TestSolverCacheReducesCallsFiveFold asserts the PR's headline
// performance criterion via the counters (not wall clock): on a fixed
// Table-1-class profile, the solver result cache plus abstract-post
// memoization cut the number of real decision-procedure runs by at
// least 5x, without changing any verdict or refinement count.
func TestSolverCacheReducesCallsFiveFold(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table-1-class run")
	}
	p := acceptProfile()
	on, err := bench.RunBenchmark(p, cegar.Options{UseSlicing: true, MaxWork: acceptMaxWork})
	if err != nil {
		t.Fatal(err)
	}
	off, err := bench.RunBenchmark(p, cegar.Options{
		UseSlicing: true, MaxWork: acceptMaxWork,
		DisableSolverCache: true, DisablePostMemo: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	if on.Safe != off.Safe || on.Err != off.Err || on.Timeout != off.Timeout {
		t.Fatalf("verdicts changed: cache-on %d/%d/%d, cache-off %d/%d/%d (safe/error/timeout)",
			on.Safe, on.Err, on.Timeout, off.Safe, off.Err, off.Timeout)
	}
	if on.Refinements != off.Refinements {
		t.Fatalf("refinement counts changed: %d vs %d", on.Refinements, off.Refinements)
	}
	if on.SolverCalls == 0 || off.SolverCalls == 0 {
		t.Fatalf("counters not wired: on=%d off=%d", on.SolverCalls, off.SolverCalls)
	}
	ratio := float64(off.SolverCalls) / float64(on.SolverCalls)
	t.Logf("%s: %d solver calls without cache, %d with (%.1fx, hit rate %.0f%%, memo hits %d)",
		p.Name, off.SolverCalls, on.SolverCalls, ratio, 100*on.CacheHitRate(), on.PostMemoHits)
	if ratio < 5 {
		t.Errorf("solver-call reduction %.2fx < required 5x (on=%d, off=%d)",
			ratio, on.SolverCalls, off.SolverCalls)
	}
}

// TestParallelBenchmarkDeterminism asserts the satellite requirement:
// parallel abstract post (SolverWorkers > 1) and parallel cluster
// checking yield identical verdicts, refinement counts, work, and
// per-counterexample slice statistics to a fully sequential run on the
// same fixed synth profile.
func TestParallelBenchmarkDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table-1-class run")
	}
	p := acceptProfile()
	seq, err := bench.RunBenchmark(p, cegar.Options{UseSlicing: true, MaxWork: acceptMaxWork})
	if err != nil {
		t.Fatal(err)
	}
	par, err := bench.RunBenchmarkParallel(p, cegar.Options{
		UseSlicing: true, MaxWork: acceptMaxWork, SolverWorkers: 4,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}

	if seq.Safe != par.Safe || seq.Err != par.Err || seq.Timeout != par.Timeout {
		t.Fatalf("verdicts diverged: sequential %d/%d/%d, parallel %d/%d/%d",
			seq.Safe, seq.Err, seq.Timeout, par.Safe, par.Err, par.Timeout)
	}
	if seq.Refinements != par.Refinements {
		t.Errorf("refinements diverged: %d vs %d", seq.Refinements, par.Refinements)
	}
	if len(seq.Checks) != len(par.Checks) {
		t.Fatalf("check counts diverged: %d vs %d", len(seq.Checks), len(par.Checks))
	}
	for i := range seq.Checks {
		s, q := seq.Checks[i], par.Checks[i]
		if s.Cluster != q.Cluster || s.Verdict != q.Verdict || s.Work != q.Work || s.Refinements != q.Refinements {
			t.Errorf("cluster %s: sequential (%s, work %d, ref %d) vs parallel (%s, work %d, ref %d)",
				s.Cluster, s.Verdict, s.Work, s.Refinements, q.Verdict, q.Work, q.Refinements)
		}
		if len(s.Traces) != len(q.Traces) {
			t.Errorf("cluster %s: trace counts %d vs %d", s.Cluster, len(s.Traces), len(q.Traces))
			continue
		}
		for j := range s.Traces {
			if s.Traces[j] != q.Traces[j] {
				t.Errorf("cluster %s trace %d: %+v vs %+v", s.Cluster, j, s.Traces[j], q.Traces[j])
			}
		}
	}
}
