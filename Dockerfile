# Builds the slicerd daemon (docs/DEPLOYMENT.md). Stdlib-only module,
# so the build stage needs nothing but the Go toolchain and the run
# stage nothing at all.
FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY cmd/ cmd/
COPY internal/ internal/
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /slicerd ./cmd/slicerd

FROM scratch
COPY --from=build /slicerd /slicerd
# Bind all interfaces inside the container so published ports work;
# operational surfaces stay on their own port.
ENTRYPOINT ["/slicerd", "-addr", "0.0.0.0:8080", "-admin-addr", "0.0.0.0:9090"]
EXPOSE 8080 9090
