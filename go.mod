module pathslice

go 1.22
