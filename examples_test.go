package pathslice

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example, checking the headline
// line of each — the examples double as end-to-end acceptance tests of
// the paper's worked figures.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries; skipped in -short mode")
	}
	cases := []struct {
		dir   string
		wants []string
	}{
		{"quickstart", []string{"path slice:", "FEASIBLE: the bug is real"}},
		{"ex2loop", []string{
			"slice feasibility: sat",   // unshaded: complete
			"slice feasibility: unsat", // shaded: sound
			"=> COMPLETE", "=> SOUND",
		}},
		{"ex1complex", []string{
			"retains complexfn: true",  // static slice cannot drop it
			"retains complexfn: false", // path slice does
			"slice feasible",
		}},
		{"wuftpd", []string{"error (refinements", "sliced witness"}},
		{"filechecker", []string{
			"session", "flushlog", "cached",
			"error", "safe",
		}},
		{"lockcheck", []string{"error (refinements", "witness slice"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range c.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("missing %q in output:\n%s", want, out)
				}
			}
		})
	}
}
