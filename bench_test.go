// Package pathslice's root benchmark suite regenerates the paper's
// evaluation artifacts as testing.B benchmarks:
//
//   - BenchmarkTable1_* : one per Table 1 row (per-cluster CEGAR check)
//   - BenchmarkFigure5_Slicing : slice application-class counterexamples
//   - BenchmarkFigure6_GccSlicing : slice gcc-class huge counterexamples
//   - BenchmarkAblation_* : the design-choice ablations of DESIGN.md §4
//
// Run `go test -bench=. -benchmem` at the repo root, or
// `go run ./cmd/experiments` for the rendered table and figures.
package pathslice

import (
	"fmt"
	"testing"

	"pathslice/internal/alias"
	"pathslice/internal/bddrel"
	"pathslice/internal/bench"
	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/dataflow"
	"pathslice/internal/instrument"
	"pathslice/internal/lang/types"
	"pathslice/internal/modref"
	"pathslice/internal/progslice"
	"pathslice/internal/smt"
	"pathslice/internal/synth"
)

// table1Setup compiles one scaled Table 1 profile and returns its
// instrumented program.
func table1Setup(b *testing.B, idx int, scale float64) *instrument.Result {
	b.Helper()
	p := synth.PaperProfiles(scale)[idx]
	ins, err := bench.CompileProfile(p)
	if err != nil {
		b.Fatal(err)
	}
	return ins
}

// benchTable1Row measures a full per-cluster check pass over one row's
// program (the unit of the paper's Total time column).
func benchTable1Row(b *testing.B, idx int) {
	p := synth.PaperProfiles(0.12)[idx]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunBenchmark(p, cegar.Options{UseSlicing: true, MaxWork: 30000})
		if err != nil {
			b.Fatal(err)
		}
		if res.Clusters == 0 {
			b.Fatal("no clusters")
		}
	}
}

func BenchmarkTable1_Fcron(b *testing.B)   { benchTable1Row(b, 0) }
func BenchmarkTable1_Wuftpd(b *testing.B)  { benchTable1Row(b, 1) }
func BenchmarkTable1_Make(b *testing.B)    { benchTable1Row(b, 2) }
func BenchmarkTable1_Privoxy(b *testing.B) { benchTable1Row(b, 3) }
func BenchmarkTable1_Ijpeg(b *testing.B)   { benchTable1Row(b, 4) }
func BenchmarkTable1_Openssh(b *testing.B) { benchTable1Row(b, 5) }

// compiledProfile builds the CFA program of an instrumented profile.
func compiledProfile(b *testing.B, ins *instrument.Result) *cfa.Program {
	b.Helper()
	info, err := types.Check(ins.Prog)
	if err != nil {
		b.Fatal(err)
	}
	cprog, err := cfa.Build(info)
	if err != nil {
		b.Fatal(err)
	}
	return cprog
}

// BenchmarkFigure5_Slicing measures slicing application-class
// counterexample traces of mixed sizes (the Figure 5 workload).
func BenchmarkFigure5_Slicing(b *testing.B) {
	ins := table1Setup(b, 1, 0.15) // wuftpd-class
	cprog := compiledProfile(b, ins)
	slicer := core.New(cprog)
	var paths []cfa.Path
	for _, loc := range cprog.ErrorLocs() {
		for _, k := range []int{2, 8, 32} {
			if p := cfa.WalkLongPath(cprog, loc, k, 0); p != nil {
				paths = append(paths, p)
			}
		}
	}
	if len(paths) == 0 {
		b.Fatal("no paths")
	}
	totalEdges := 0
	for _, p := range paths {
		totalEdges += len(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range paths {
			if _, err := slicer.Slice(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(totalEdges), "trace-edges/op")
}

// BenchmarkFigure6_GccSlicing measures slicing one huge gcc-class
// counterexample (the Figure 6 regime: tens of thousands of blocks).
func BenchmarkFigure6_GccSlicing(b *testing.B) {
	p := synth.GccProfile(0.1)
	ins, err := bench.CompileProfile(p)
	if err != nil {
		b.Fatal(err)
	}
	cprog := compiledProfile(b, ins)
	var path cfa.Path
	for _, loc := range cprog.ErrorLocs() {
		if path = cfa.WalkLongPath(cprog, loc, 512, 0); path != nil {
			break
		}
	}
	if path == nil {
		b.Fatal("no long path")
	}
	slicer := core.New(cprog)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := slicer.Slice(path)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.InputBlocks), "trace-blocks")
			b.ReportMetric(float64(res.Stats.SliceBlocks), "slice-blocks")
		}
	}
}

// BenchmarkSummarizedSlice measures the context-keyed frame summaries
// (internal/summ) on the call-heavy gcc-class subject: a ~40k-op trace
// of deep repeated call chains, sliced plain and summarized. The
// walked-edge metrics expose the deterministic work reduction the
// wall-time ratio comes from; `make bench-json` records the full
// 10k/20k/40k doubling sweep in BENCH_PR6.json.
func BenchmarkSummarizedSlice(b *testing.B) {
	prog, target, err := bench.CallHeavySetup(bench.DefaultGccConfig())
	if err != nil {
		b.Fatal(err)
	}
	path := cfa.WalkLongPath(prog, target, 172, 0)
	if path == nil {
		b.Fatal("no long path")
	}
	for _, summaries := range []bool{false, true} {
		name := "plain"
		if summaries {
			name = "summarized"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				slicer := core.NewWithOptions(prog, core.Options{Summaries: summaries})
				res, err := slicer.Slice(path)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(path)), "trace-ops")
					b.ReportMetric(float64(res.Stats.WalkedEdges), "walked-edges")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4)

// deepChainProgram has a deep call stack of guards in front of an
// infeasible check — the workload for the §4.2 optimizations.
func deepChainProgram(depth int) string {
	src := "int g;\n"
	src += "void sink() {\n  if (g == 1) {\n    if (g == 2) {\n      error;\n    }\n  }\n}\n"
	for d := depth - 1; d >= 0; d-- {
		callee := "sink()"
		if d != depth-1 {
			callee = fmt.Sprintf("level%d(t)", d+1)
		}
		src += fmt.Sprintf("void level%d(int k) {\n  int t = k + 1;\n  if (t > 0) {\n    %s;\n  }\n}\n", d, callee)
	}
	src += "void main() {\n  g = 1;\n  level0(1);\n}\n"
	return src
}

// BenchmarkAblation_EarlyStop compares slicing an infeasible path with
// and without the early-unsat-stop optimization.
func BenchmarkAblation_EarlyStop(b *testing.B) {
	prog := compile.MustSource(deepChainProgram(12))
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	if path == nil {
		b.Fatal("no path")
	}
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"off", core.Options{}},
		{"on", core.Options{EarlyUnsatStop: true}},
		{"on-every-4", core.Options{EarlyUnsatStop: true, CheckEvery: 4}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			slicer := core.NewWithOptions(prog, cfg.opts)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := slicer.Slice(path)
				if err != nil {
					b.Fatal(err)
				}
				// Without early stop, prove infeasibility afterwards —
				// the end-to-end cost being compared.
				if !res.KnownInfeasible {
					if r, _ := slicer.CheckFeasibility(res.Slice); r.Status != smt.StatusUnsat {
						b.Fatal("expected unsat")
					}
				}
			}
		})
	}
}

// BenchmarkAblation_SkipFunctions compares slice sizes and time with
// the function-skipping optimization on deep guard chains.
func BenchmarkAblation_SkipFunctions(b *testing.B) {
	prog := compile.MustSource(deepChainProgram(16))
	path := cfa.FindPathToError(prog, cfa.FindOptions{})
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"off", core.Options{}},
		{"on", core.Options{SkipFunctions: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			slicer := core.NewWithOptions(prog, cfg.opts)
			var edges int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := slicer.Slice(path)
				if err != nil {
					b.Fatal(err)
				}
				edges = res.Stats.SliceEdges
			}
			b.ReportMetric(float64(edges), "slice-edges")
		})
	}
}

// BenchmarkAblation_WrBtCache compares cached WrBt/By queries (shared
// dataflow.Info across paths) against recomputing the fixpoints per
// path — the §4.1 design choice of keeping queries intraprocedural and
// cacheable.
func BenchmarkAblation_WrBtCache(b *testing.B) {
	ins := table1Setup(b, 0, 0.15)
	cprog := compiledProfile(b, ins)
	var paths []cfa.Path
	for _, loc := range cprog.ErrorLocs() {
		if p := cfa.WalkLongPath(cprog, loc, 8, 0); p != nil {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		b.Fatal("no paths")
	}
	b.Run("shared", func(b *testing.B) {
		slicer := core.New(cprog)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range paths {
				if _, err := slicer.Slice(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fresh-per-path", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range paths {
				slicer := core.New(cprog) // recomputes alias/modref/fixpoints
				if _, err := slicer.Slice(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblation_SolverCache compares end-to-end Table-1-class
// checking with the solver result cache and abstract-post memo enabled
// (the default) against both disabled, and with the per-predicate
// parallel post on top. Verdicts and work counts are identical in every
// configuration; only the number of real decision-procedure runs — and
// hence the wall clock — changes.
func BenchmarkAblation_SolverCache(b *testing.B) {
	p := synth.PaperProfiles(0.2)[3] // privoxy-class, same as accept_test.go
	for _, cfg := range []struct {
		name    string
		opts    cegar.Options
		workers int
	}{
		{"cache+memo", cegar.Options{UseSlicing: true, MaxWork: 30000}, 1},
		{"no-cache", cegar.Options{UseSlicing: true, MaxWork: 30000,
			DisableSolverCache: true, DisablePostMemo: true}, 1},
		{"cache+memo+4workers", cegar.Options{UseSlicing: true, MaxWork: 30000,
			SolverWorkers: 4}, 4},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var calls int64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunBenchmarkParallel(p, cfg.opts, cfg.workers)
				if err != nil {
					b.Fatal(err)
				}
				calls = res.SolverCalls
			}
			b.ReportMetric(float64(calls), "solver-calls")
		})
	}
}

// BenchmarkAblation_CegarSlicing compares end-to-end checking with and
// without path slicing in the counterexample analysis phase — the
// paper's headline systems claim.
func BenchmarkAblation_CegarSlicing(b *testing.B) {
	src := `
		int x;
		int a;
		void f() { skip; }
		void main() {
			for (int i = 1; i <= 30; i = i + 1) { f(); }
			if (a >= 0) {
				if (x == 0) { error; }
			}
		}`
	prog := compile.MustSource(src)
	target := prog.ErrorLocs()[0]
	for _, cfg := range []struct {
		name string
		opts cegar.Options
	}{
		{"with-slicing", cegar.Options{UseSlicing: true, MaxWork: 100000}},
		{"no-slicing", cegar.Options{UseSlicing: false, MaxWork: 100000, MaxRefinements: 10}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var work int
			for i := 0; i < b.N; i++ {
				r := cegar.New(prog, cfg.opts).Check(target)
				work = r.Work
			}
			b.ReportMetric(float64(work), "work-units")
		})
	}
}

// BenchmarkAblation_Covering compares subsumption-based covering (lazy
// abstraction's standard relation) against exact-match covering in the
// abstract reachability.
func BenchmarkAblation_Covering(b *testing.B) {
	src := `
		int a; int b; int c;
		void main() {
			a = nondet();
			b = nondet();
			c = 0;
			if (a > 0) { c = c + 1; }
			if (b > 0) { c = c + 1; }
			if (a > 0) { if (b > 0) { if (c == 0) { error; } } }
		}`
	prog := compile.MustSource(src)
	target := prog.ErrorLocs()[0]
	for _, cfg := range []struct {
		name string
		opts cegar.Options
	}{
		{"subsumption", cegar.Options{UseSlicing: true}},
		{"exact", cegar.Options{UseSlicing: true, ExactCover: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var work int
			for i := 0; i < b.N; i++ {
				r := cegar.New(prog, cfg.opts).Check(target)
				if r.Verdict != cegar.VerdictSafe {
					b.Fatalf("verdict: %s", r.Verdict)
				}
				work = r.Work
			}
			b.ReportMetric(float64(work), "work-units")
		})
	}
}

// BenchmarkAblation_Localization compares per-scope predicate
// evaluation against evaluating every predicate everywhere, on a
// file-property check with several helper functions.
func BenchmarkAblation_Localization(b *testing.B) {
	p := synth.PaperProfiles(0.12)[0]
	for _, cfg := range []struct {
		name string
		opts cegar.Options
	}{
		{"localized", cegar.Options{UseSlicing: true, MaxWork: 30000}},
		{"global", cegar.Options{UseSlicing: true, MaxWork: 30000, NoLocalize: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := bench.RunBenchmark(p, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Clusters == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
}

// BenchmarkBaseline_StaticSlice measures the static program slicer on
// the same program, for the Ex1-style comparison.
func BenchmarkBaseline_StaticSlice(b *testing.B) {
	ins := table1Setup(b, 0, 0.15)
	cprog := compiledProfile(b, ins)
	target := cprog.ErrorLocs()[0]
	s := progslice.New(cprog)
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := s.Slice(target)
		ratio = res.Ratio()
	}
	b.ReportMetric(100*ratio, "retained-%")
}

// BenchmarkSolver_TraceFormula measures deciding a mid-sized trace
// formula — the decision-procedure load of §4.2.
func BenchmarkSolver_TraceFormula(b *testing.B) {
	ins := table1Setup(b, 1, 0.15)
	cprog := compiledProfile(b, ins)
	var path cfa.Path
	for _, loc := range cprog.ErrorLocs() {
		if path = cfa.WalkLongPath(cprog, loc, 4, 0); path != nil {
			break
		}
	}
	if path == nil {
		b.Fatal("no path")
	}
	slicer := core.New(cprog)
	res, err := slicer.Slice(path)
	if err != nil {
		b.Fatal(err)
	}
	f := slicer.TraceFormula(res.Slice)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := smt.Solve(f)
		if r.Status == smt.StatusUnknown {
			b.Fatal("unknown")
		}
	}
}

// BenchmarkAnalyses_Setup measures the precomputation (alias, mod-ref,
// reachability fixpoints) amortized across a whole check — the cost the
// paper's gcc experiment identifies as dominant ("the time was
// dominated by the computation of By and WrBt").
func BenchmarkAnalyses_Setup(b *testing.B) {
	p := synth.GccProfile(0.08)
	ins, err := bench.CompileProfile(p)
	if err != nil {
		b.Fatal(err)
	}
	cprog := compiledProfile(b, ins)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.New(cprog)
	}
}

// BenchmarkAblation_BitsetVsBDD compares the dense-bitset WrBt/By
// implementation against the BDD-backed one on a gcc-class program —
// the representation question the paper leaves as future work (§5).
func BenchmarkAblation_BitsetVsBDD(b *testing.B) {
	p := synth.GccProfile(0.08)
	ins, err := bench.CompileProfile(p)
	if err != nil {
		b.Fatal(err)
	}
	cprog := compiledProfile(b, ins)
	al := alias.Analyze(cprog)
	mr := modref.Analyze(cprog, al)
	// A representative query workload: WrBt over strided location pairs
	// of the largest function.
	var biggest *cfa.CFA
	for _, fn := range cprog.Funcs {
		if biggest == nil || len(fn.Locs) > len(biggest.Locs) {
			biggest = fn
		}
	}
	live := cfa.NewLvalSet(cfa.Lvalue{Var: "cfg2"})
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			df := dataflow.Analyze(cprog, al, mr)
			for ai := 0; ai < len(biggest.Locs); ai += 3 {
				for bi := 0; bi < len(biggest.Locs); bi += 5 {
					df.MustWrBt(biggest.Locs[ai], biggest.Locs[bi], live)
				}
			}
		}
	})
	b.Run("bdd", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			br := bddrel.Analyze(cprog, al, mr)
			for ai := 0; ai < len(biggest.Locs); ai += 3 {
				for bi := 0; bi < len(biggest.Locs); bi += 5 {
					br.WrBt(biggest.Locs[ai], biggest.Locs[bi], live)
				}
			}
		}
	})
}

// BenchmarkEarlyUnsatStop measures the §4.2 early-stop loop both ways
// over the same guard-chain path (≥300 taken assumes before the
// contradicting operation is reached): "incremental" is the production
// slicer loop — assert the delta, check — and "scratch-loop" is the
// pre-incremental baseline that re-solves the whole asserted prefix at
// every check. The acceptance bar for the incremental engine is ≥3×
// on this shape; see docs/PERFORMANCE.md for recorded numbers.
func BenchmarkEarlyUnsatStop(b *testing.B) {
	prog, path, err := bench.GuardChainSetup(300)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := bench.EarlyStopIncremental(prog, path)
			if err != nil {
				b.Fatal(err)
			}
			if !res.KnownInfeasible {
				b.Fatal("early stop missed the unsatisfiable prefix")
			}
			if res.Stats.SolverChecks < 200 {
				b.Fatalf("only %d solver checks; want a ≥200-assume trace", res.Stats.SolverChecks)
			}
		}
	})
	b.Run("scratch-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bench.EarlyStopScratch(prog, path); err != nil {
				b.Fatal(err)
			}
		}
	})
}
