// Command minirun executes a MiniC program concretely — handy for
// validating witnesses reported by pathslice/blastlite and for playing
// with the language.
//
// Usage:
//
//	minirun [-set g=3 -set h=-1] [-in 1,0,42] [-steps n] [-path] file.mc
//
// -set assigns initial values to globals (default 0); -in supplies the
// values nondet() returns, in order (then 0s).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"pathslice/internal/compile"
	"pathslice/internal/interp"
	"pathslice/internal/wp"
)

type setFlags []string

func (s *setFlags) String() string     { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var sets setFlags
	flag.Var(&sets, "set", "initial global value, e.g. -set g=3 (repeatable)")
	inputs := flag.String("in", "", "comma-separated nondet() values")
	steps := flag.Int("steps", 1000000, "step budget")
	showPath := flag.Bool("path", false, "print the executed path")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minirun [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := compile.Source(string(src))
	if err != nil {
		fatal(err)
	}
	st := interp.NewState(prog, wp.NewAddrMap(prog))
	for _, s := range sets {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			fatal(fmt.Errorf("bad -set %q (want name=value)", s))
		}
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -set value %q: %v", val, err))
		}
		if _, declared := prog.Types[name]; !declared {
			fatal(fmt.Errorf("-set %s: no such global", name))
		}
		st.Set(name, v)
	}
	var ins []int64
	if *inputs != "" {
		for _, part := range strings.Split(*inputs, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -in value %q: %v", part, err))
			}
			ins = append(ins, v)
		}
	}
	res := interp.Run(prog, st, &interp.SliceInputs{Vals: ins},
		interp.RunOptions{MaxSteps: *steps, RecordPath: *showPath})
	switch {
	case res.ReachedError:
		fmt.Printf("REACHED ERROR at %s after %d steps\n", res.ErrorLoc, res.Steps)
	case res.ExitNormally:
		fmt.Printf("exited normally after %d steps\n", res.Steps)
	case res.Stuck:
		fmt.Printf("stuck after %d steps (blocked assume or invalid memory access)\n", res.Steps)
	default:
		fmt.Printf("step budget (%d) exhausted\n", *steps)
	}
	// Final global values, sorted.
	var names []string
	for name := range prog.Types {
		if prog.IsGlobal(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %s = %d\n", name, st.Get(name))
	}
	if *showPath {
		fmt.Printf("--- executed path (%d edges) ---\n%s", len(res.Path), res.Path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minirun:", err)
	os.Exit(1)
}
