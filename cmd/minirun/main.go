// Command minirun executes a MiniC program concretely — handy for
// validating witnesses reported by pathslice/blastlite and for playing
// with the language.
//
// Usage:
//
//	minirun [-set g=3 -set h=-1] [-in 1,0,42] [-steps n] [-path] file.mc
//	minirun -conc [-sched-seed n] [-conc-trace-out f.pstrc] file.mc
//
// -set assigns initial values to globals (default 0); -in supplies the
// values nondet() returns, in order (then 0s).
//
// -conc runs a multi-threaded program under the seeded random
// scheduler (docs/CONCURRENCY.md); -sched-seed picks the interleaving
// and -conc-trace-out records it as a PSTRC02 trace file that
// `pathslice -conc-trace` and the slicerd trace upload accept.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/interp"
	"pathslice/internal/wp"
)

type setFlags []string

func (s *setFlags) String() string     { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var sets setFlags
	flag.Var(&sets, "set", "initial global value, e.g. -set g=3 (repeatable)")
	inputs := flag.String("in", "", "comma-separated nondet() values")
	steps := flag.Int("steps", 1000000, "step budget")
	showPath := flag.Bool("path", false, "print the executed path")
	conc := flag.Bool("conc", false, "run under the seeded random thread scheduler")
	schedSeed := flag.Uint64("sched-seed", 0, "scheduler seed for -conc; equal seeds replay equal interleavings")
	concOut := flag.String("conc-trace-out", "", "with -conc, record the interleaving to this PSTRC02 trace file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minirun [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := compile.Source(string(src))
	if err != nil {
		fatal(err)
	}
	st := interp.NewState(prog, wp.NewAddrMap(prog))
	for _, s := range sets {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			fatal(fmt.Errorf("bad -set %q (want name=value)", s))
		}
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -set value %q: %v", val, err))
		}
		if _, declared := prog.Types[name]; !declared {
			fatal(fmt.Errorf("-set %s: no such global", name))
		}
		st.Set(name, v)
	}
	var ins []int64
	if *inputs != "" {
		for _, part := range strings.Split(*inputs, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -in value %q: %v", part, err))
			}
			ins = append(ins, v)
		}
	}
	if *concOut != "" && !*conc {
		fatal(fmt.Errorf("-conc-trace-out requires -conc"))
	}
	if *conc {
		runConc(prog, st, ins, *steps, *schedSeed, *concOut, *showPath)
		printGlobals(prog, st)
		return
	}
	res := interp.Run(prog, st, &interp.SliceInputs{Vals: ins},
		interp.RunOptions{MaxSteps: *steps, RecordPath: *showPath})
	switch {
	case res.ReachedError:
		fmt.Printf("REACHED ERROR at %s after %d steps\n", res.ErrorLoc, res.Steps)
	case res.ExitNormally:
		fmt.Printf("exited normally after %d steps\n", res.Steps)
	case res.Stuck:
		fmt.Printf("stuck after %d steps (blocked assume or invalid memory access)\n", res.Steps)
	default:
		fmt.Printf("step budget (%d) exhausted\n", *steps)
	}
	printGlobals(prog, st)
	if *showPath {
		fmt.Printf("--- executed path (%d edges) ---\n%s", len(res.Path), res.Path)
	}
}

// runConc executes prog under the seeded random scheduler and
// optionally records the interleaving as a PSTRC02 trace.
func runConc(prog *cfa.Program, st *interp.State, ins []int64, steps int, seed uint64, out string, showPath bool) {
	res := interp.ConcRun(prog, st, &interp.SliceInputs{Vals: ins}, interp.ConcRunOptions{
		MaxSteps:    steps,
		RecordTrace: out != "" || showPath,
		Seed:        seed,
	})
	switch {
	case res.ReachedError:
		fmt.Printf("REACHED ERROR at %s (thread %d) after %d steps [sched-seed %d]\n",
			res.ErrorLoc, res.ErrorTID, res.Steps, seed)
	case res.ExitNormally:
		fmt.Printf("all threads exited normally after %d steps [sched-seed %d]\n", res.Steps, seed)
	case res.Stuck:
		fmt.Printf("stuck after %d steps (deadlock, blocked assume, or invalid memory access) [sched-seed %d]\n",
			res.Steps, seed)
	default:
		fmt.Printf("step budget (%d) exhausted [sched-seed %d]\n", steps, seed)
	}
	if showPath {
		fmt.Printf("--- executed interleaving (%d events) ---\n", len(res.Trace))
		for _, ev := range res.Trace {
			fmt.Printf("t%d %s\n", ev.TID, ev.Edge)
		}
	}
	if out != "" {
		if err := cfa.WriteConcTraceFile(out, prog, res.Trace); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d-event trace to %s\n", len(res.Trace), out)
	}
}

// printGlobals dumps the final global values, sorted by name.
func printGlobals(prog *cfa.Program, st *interp.State) {
	var names []string
	for name := range prog.Types {
		if prog.IsGlobal(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %s = %d\n", name, st.Get(name))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minirun:", err)
	os.Exit(1)
}
