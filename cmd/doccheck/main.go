// Command doccheck keeps the Markdown docs honest. It walks every
// *.md file in the repository and fails (exit 1) on:
//
//   - broken relative links: [text](path) targets that do not exist
//     on disk (anchors are stripped; http/https/mailto links are
//     skipped);
//   - stale code references: backticked `pkg.Ident` mentions, where
//     pkg is one of this module's packages, naming an exported
//     identifier the package no longer declares (test files count,
//     so fuzz targets may be referenced; `foo_test` external test
//     packages attribute to foo);
//   - drifted API examples: in files that use <!-- doccheck: Type -->
//     markers (docs/API.md), every ```json fence must carry one and
//     must strict-decode — unknown fields rejected, exactly like a
//     slicerd request body — into the named internal/service type.
//
// It is wired into `make docs-check` (and `make check`), so docs
// drift breaks the build the same way a failing test does.
//
// Usage:
//
//	doccheck [-root dir]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	mdFiles, err := findMarkdown(*root)
	if err != nil {
		fatal(err)
	}
	if len(mdFiles) == 0 {
		fatal(fmt.Errorf("no .md files found under %s", *root))
	}
	exported, err := collectExported(*root)
	if err != nil {
		fatal(err)
	}

	var problems []string
	for _, md := range mdFiles {
		b, err := os.ReadFile(md)
		if err != nil {
			fatal(err)
		}
		rel, _ := filepath.Rel(*root, md)
		problems = append(problems, checkLinks(*root, rel, string(b))...)
		problems = append(problems, checkIdents(rel, string(b), exported)...)
		problems = append(problems, checkAPIExamples(rel, string(b))...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s) in %d file(s) checked\n", len(problems), len(mdFiles))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d markdown files OK (%d packages indexed)\n", len(mdFiles), len(exported))
}

// findMarkdown returns every .md file under root, skipping VCS and
// tool directories.
func findMarkdown(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "node_modules", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			out = append(out, path)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// linkRE matches inline Markdown links [text](target). Reference-style
// links and autolinks are out of scope.
var linkRE = regexp.MustCompile(`\[[^\]\n]*\]\(([^)\s]+)\)`)

// checkLinks verifies that relative link targets exist on disk.
func checkLinks(root, rel, content string) []string {
	var problems []string
	dir := filepath.Dir(filepath.Join(root, rel))
	for lineNo, line := range strings.Split(content, "\n") {
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if u, err := url.Parse(target); err == nil && u.Scheme != "" {
				continue // http:, https:, mailto:, ...
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure anchor into this file
			}
			p := filepath.Join(dir, filepath.FromSlash(target))
			if _, err := os.Stat(p); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", rel, lineNo+1, m[1]))
			}
		}
	}
	return problems
}

// identRE matches backticked pkg.Ident references: a lowercase
// package name, a dot, and an exported (capitalized) identifier,
// optionally followed by a method or call suffix that is ignored.
var identRE = regexp.MustCompile("`([a-z][a-z0-9]*)\\.([A-Z][A-Za-z0-9]*)[^`]*`")

// checkIdents verifies that `pkg.Ident` mentions refer to exported
// identifiers the named package still declares. Unknown package names
// are skipped (they refer to stdlib or prose, not this module).
func checkIdents(rel, content string, exported map[string]map[string]bool) []string {
	var problems []string
	inFence := false
	for lineNo, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range identRE.FindAllStringSubmatch(line, -1) {
			pkg, ident := m[1], m[2]
			idents, ok := exported[pkg]
			if !ok {
				continue
			}
			if !idents[ident] {
				problems = append(problems, fmt.Sprintf(
					"%s:%d: stale reference %s.%s (not exported by package %s)", rel, lineNo+1, pkg, ident, pkg))
			}
		}
	}
	return problems
}

// collectExported parses every Go package under root and returns, per
// package name, the set of exported top-level identifiers (types,
// funcs, consts, vars) plus exported methods and struct fields — so
// docs may reference `cegar.Options` and `smt.StatusSat` alike.
func collectExported(root string) (map[string]map[string]bool, error) {
	out := make(map[string]map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		// Test files count too — docs reference fuzz targets and test
		// helpers by name; external test packages attribute to the
		// package under test.
		name := strings.TrimSuffix(f.Name.Name, "_test")
		if name == "main" {
			return nil
		}
		idents := out[name]
		if idents == nil {
			idents = make(map[string]bool)
			out[name] = idents
		}
		addExported(f, idents)
		return nil
	})
	return out, err
}

func addExported(f *ast.File, idents map[string]bool) {
	add := func(n *ast.Ident) {
		if n != nil && n.IsExported() {
			idents[n.Name] = true
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			add(d.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					add(s.Name)
					switch t := s.Type.(type) {
					case *ast.StructType:
						for _, fld := range t.Fields.List {
							for _, n := range fld.Names {
								add(n)
							}
						}
					case *ast.InterfaceType:
						for _, meth := range t.Methods.List {
							for _, n := range meth.Names {
								add(n)
							}
						}
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						add(n)
					}
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doccheck:", err)
	os.Exit(1)
}
