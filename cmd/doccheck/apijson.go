package main

import (
	"encoding/json"
	"fmt"
	"strings"

	"pathslice/internal/service"
)

// apiTypes registers the wire types JSON examples may claim to be. A
// ```json fence annotated `<!-- doccheck: TypeName -->` must decode
// into the named struct with unknown fields rejected — exactly the
// validation slicerd applies to request bodies — so the examples in
// docs/API.md cannot drift from internal/service's types.
var apiTypes = map[string]func() any{
	"SliceRequest":  func() any { return new(service.SliceRequest) },
	"SliceResponse": func() any { return new(service.SliceResponse) },
	"SliceTarget":   func() any { return new(service.SliceTarget) },
	"CheckRequest":  func() any { return new(service.CheckRequest) },
	"CheckResponse": func() any { return new(service.CheckResponse) },
	"ErrorResponse": func() any { return new(service.ErrorResponse) },
	"HealthResponse": func() any {
		return new(service.HealthResponse)
	},
	"StatsResponse": func() any { return new(service.StatsResponse) },
}

// markerPrefix introduces an API-example annotation. In any file that
// uses at least one annotation, every ```json fence must carry one:
// an unannotated example in the API reference is exactly the kind
// that silently rots.
const markerPrefix = "<!-- doccheck:"

// checkAPIExamples validates annotated JSON examples. It returns no
// problems for files without markers (ordinary docs may show free-form
// JSON in fences).
func checkAPIExamples(rel, content string) []string {
	if !strings.Contains(content, markerPrefix) {
		return nil
	}
	var problems []string
	lines := strings.Split(content, "\n")
	typeName := "" // armed by the most recent marker
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if rest, ok := strings.CutPrefix(line, markerPrefix); ok {
			typeName = strings.TrimSpace(strings.TrimSuffix(rest, "-->"))
			if _, ok := apiTypes[typeName]; !ok {
				problems = append(problems, fmt.Sprintf(
					"%s:%d: doccheck marker names unknown API type %q", rel, i+1, typeName))
				typeName = ""
			}
			continue
		}
		if !strings.HasPrefix(line, "```") {
			continue
		}
		lang := strings.TrimPrefix(line, "```")
		fenceStart := i + 1
		var body strings.Builder
		for i++; i < len(lines); i++ {
			if strings.HasPrefix(strings.TrimSpace(lines[i]), "```") {
				break
			}
			body.WriteString(lines[i])
			body.WriteByte('\n')
		}
		if lang != "json" {
			typeName = "" // a marker only covers the fence right after it
			continue
		}
		if typeName == "" {
			problems = append(problems, fmt.Sprintf(
				"%s:%d: json example without a %s TypeName --> marker", rel, fenceStart, markerPrefix))
			continue
		}
		if err := strictDecode(body.String(), apiTypes[typeName]()); err != nil {
			problems = append(problems, fmt.Sprintf(
				"%s:%d: json example does not decode as service.%s: %v", rel, fenceStart, typeName, err))
		}
		typeName = ""
	}
	return problems
}

// strictDecode mirrors the service's request decoding: one JSON value,
// unknown fields rejected, nothing trailing.
func strictDecode(text string, into any) error {
	dec := json.NewDecoder(strings.NewReader(text))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the JSON value")
	}
	return nil
}
