// Command slicecheck runs the oracle campaign from the command line:
// it generates MiniC program/trace pairs, slices each with core.Slicer,
// and machine-checks the Theorem-1 soundness and completeness contract
// by differential solving, brute-force subtrace enumeration, concrete
// model replay, and metamorphic program transformations (see
// internal/oracle and docs/TESTING.md).
//
// Usage:
//
//	slicecheck [-seeds n] [-budget d] [-seed n] [-corpus dir]
//	           [-summaries] [-unsound mode] [-v]
//
// -summaries adds the summary-differential pillar: every pair is also
// sliced with context-keyed frame summaries on (warm memo included)
// and compared bit-for-bit against the plain walk, with the generator
// biased toward call-heavy specs.
//
// -unsound deliberately breaks one Take rule (1 = drop guard By tests,
// 2 = drop aliased writes, 3 = skip callee frames, 4 = reuse frame
// summaries across differing live contexts — implies -summaries) to
// demonstrate the oracle catching the regression: the run is then
// EXPECTED to report violations and exits 0 only if it does.
//
// Exit codes follow the repo convention: 0 clean, 3 violations found,
// 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pathslice/internal/core"
	"pathslice/internal/oracle"
)

func main() {
	seeds := flag.Int("seeds", 140, "number of generator specs to process")
	budget := flag.Duration("budget", 30*time.Second, "wall-clock budget")
	seed := flag.Int64("seed", 1, "campaign rng seed")
	corpus := flag.String("corpus", "testdata/oracle", "regression corpus dir (seeds.txt)")
	summaries := flag.Bool("summaries", false, "also diff summary-on vs summary-off slices on call-heavy specs")
	unsound := flag.Int("unsound", 0, "break a Take rule on purpose (1..4); expect violations")
	verbose := flag.Bool("v", false, "print every violation and inconclusive count")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: slicecheck [flags]")
		os.Exit(2)
	}
	if *unsound < 0 || *unsound > 4 {
		fmt.Fprintln(os.Stderr, "slicecheck: -unsound must be 0..4")
		os.Exit(2)
	}
	if core.UnsoundMode(*unsound) == core.UnsoundStaleSummaries {
		// Stale reuse only manifests with the memo consulted, and only
		// diverges under context-changing repeated calls.
		*summaries = true
	}

	stats := oracle.Run(oracle.Config{
		Seeds:     *seeds,
		Budget:    *budget,
		Seed:      *seed,
		CorpusDir: *corpus,
		Unsound:   core.UnsoundMode(*unsound),
		Summaries: *summaries,
		CallHeavy: *summaries,
	})
	fmt.Println(stats.Summary())
	if *verbose || len(stats.Violations) > 0 {
		for _, v := range stats.Violations {
			fmt.Printf("  %s\n", v)
		}
	}

	if *unsound != 0 {
		// Self-test mode: the broken slicer MUST be caught.
		if len(stats.Violations) == 0 {
			fmt.Printf("slicecheck: unsound mode %d was NOT caught\n", *unsound)
			os.Exit(3)
		}
		fmt.Printf("slicecheck: unsound mode %d caught as expected (%d violations)\n",
			*unsound, len(stats.Violations))
		return
	}
	if len(stats.Violations) > 0 {
		fmt.Printf("slicecheck: %d soundness violations — add the failing seeds to testdata/oracle/seeds.txt (docs/TESTING.md)\n",
			len(stats.Violations))
		os.Exit(3)
	}
}
