// Command pathslice slices a candidate path to an error location of a
// MiniC program and reports the slice and its feasibility verdict.
//
// Usage:
//
//	pathslice [-long] [-unroll k] [-early] [-skipfns] [-trace-out f]
//	          [-metrics-addr a] [-v] file.mc
//
// The candidate path is found by a data-free graph search (the kind of
// possibly-infeasible counterexample an imprecise static analysis
// returns); -long unrolls loops like a DFS model checker would.
//
// Observability (docs/OBSERVABILITY.md): -trace-out writes a JSONL
// event log ("-" for stderr) and prints the per-phase time/call table
// on exit; -metrics-addr serves /metrics, /debug/vars, /debug/pprof.
package main

import (
	"flag"
	"fmt"
	"os"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/obs"
	"pathslice/internal/report"
	"pathslice/internal/smt"
)

func main() {
	long := flag.Bool("long", false, "produce a long (loop-unrolling) candidate path")
	unroll := flag.Int("unroll", 3, "loop unrolling bound for -long")
	early := flag.Bool("early", false, "enable the early-unsat-stop optimization (§4.2)")
	skip := flag.Bool("skipfns", false, "enable the function-skipping optimization (§4.2; loses completeness)")
	trace := flag.Bool("trace", false, "print the annotated backward pass (live sets and step locations, like Fig. 1(C))")
	traceOut := flag.String("trace-out", "", "write a JSONL trace event log to this file (\"-\" for stderr) and print the per-phase table")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :8080)")
	verbose := flag.Bool("v", false, "print the input path and the slice")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pathslice [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}
	shutdown, err := obs.Setup(*traceOut, *metricsAddr)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := compile.Source(string(src))
	if err != nil {
		fatal(err)
	}
	locs := prog.ErrorLocs()
	if len(locs) == 0 {
		fatal(fmt.Errorf("%s: no error locations (use `error;` or `assert(...)`)", flag.Arg(0)))
	}
	slicer := core.NewWithOptions(prog, core.Options{
		EarlyUnsatStop: *early,
		SkipFunctions:  *skip,
		RecordTrace:    *trace,
	})
	for _, target := range locs {
		var path cfa.Path
		if *long {
			path = cfa.WalkLongPath(prog, target, *unroll, 0)
		}
		if path == nil {
			path = cfa.FindPath(prog, target, cfa.FindOptions{})
		}
		if path == nil {
			fmt.Printf("%s: unreachable in the CFA graph\n", target)
			continue
		}
		res, err := slicer.Slice(path)
		if err != nil {
			fatal(err)
		}
		st := res.Stats
		fmt.Printf("%s: path %d edges (%d blocks) -> slice %d edges (%d blocks), %.2f%%\n",
			target, st.InputEdges, st.InputBlocks, st.SliceEdges, st.SliceBlocks, 100*st.Ratio())
		if *verbose {
			fmt.Printf("--- path ---\n%s--- slice ---\n%s", path, res.Slice)
		}
		if *trace {
			fmt.Printf("--- annotated backward pass ---\n%s", report.AnnotatedTrace(path, res))
		}
		fmt.Print("  ", report.SliceSummary(res))
		if res.KnownInfeasible {
			fmt.Printf("  verdict: INFEASIBLE (early stop after %d solver checks)\n", st.SolverChecks)
			continue
		}
		fr, _ := slicer.CheckFeasibility(res.Slice)
		switch fr.Status {
		case smt.StatusSat:
			fmt.Printf("  verdict: FEASIBLE — the error location is reachable (modulo termination)\n")
			fmt.Printf("  witness state: %v\n", fr.Model)
		case smt.StatusUnsat:
			fmt.Printf("  verdict: INFEASIBLE — this path (and its variants) cannot reach the target\n")
		default:
			fmt.Printf("  verdict: UNKNOWN (solver limits)\n")
		}
	}
	if err := shutdown(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pathslice:", err)
	os.Exit(1)
}
