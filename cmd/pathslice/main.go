// Command pathslice slices a candidate path to an error location of a
// MiniC program and reports the slice and its feasibility verdict.
//
// Usage:
//
//	pathslice [-long] [-unroll k] [-early] [-skipfns] [-summaries]
//	          [-portfolio] [-portfolio-batch] [-trace-file f [-stream]]
//	          [-conc-trace f] [-deadline d] [-fault-* ...]
//	          [-trace-out f] [-metrics-addr a] [-v] file.mc
//
// -conc-trace slices a recorded multi-threaded PSTRC02 interleaving of
// file.mc with the two-phase concurrent walk (docs/CONCURRENCY.md)
// instead of searching the CFA for a candidate path.
//
// The candidate path is found by a data-free graph search (the kind of
// possibly-infeasible counterexample an imprecise static analysis
// returns); -long unrolls loops like a DFS model checker would.
//
// Robustness (docs/ROBUSTNESS.md): -deadline bounds slicing plus
// feasibility per target — expiry degrades to a larger (still sound)
// slice and an UNKNOWN feasibility verdict; -fault-* installs the
// deterministic fault injector.
//
// Scaling (docs/PERFORMANCE.md): -summaries memoizes context-keyed
// callee frame summaries so repeated calls cost a table lookup;
// -trace-file records the candidate path in the binary PSTRC format,
// and -stream slices it straight from that file with only a bounded
// window of frames resident.
//
// Exit codes: 0 every analyzed slice infeasible, 1 internal error,
// 2 usage, 3 a feasible slice was found, 4 some verdict was
// unknown/timed out (and none was feasible).
//
// Observability (docs/OBSERVABILITY.md): -trace-out writes a JSONL
// event log ("-" for stderr) and prints the per-phase time/call table
// on exit; -metrics-addr serves /metrics, /debug/vars, /debug/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/faults"
	"pathslice/internal/obs"
	"pathslice/internal/report"
	"pathslice/internal/smt"
)

// Exit codes (shared by all three binaries, docs/ROBUSTNESS.md).
const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
	exitUnsafe   = 3
	exitTimeout  = 4
)

func main() {
	long := flag.Bool("long", false, "produce a long (loop-unrolling) candidate path")
	unroll := flag.Int("unroll", 3, "loop unrolling bound for -long")
	early := flag.Bool("early", false, "enable the early-unsat-stop optimization (§4.2)")
	skip := flag.Bool("skipfns", false, "enable the function-skipping optimization (§4.2; loses completeness)")
	summaries := flag.Bool("summaries", false, "memoize context-keyed callee frame summaries (gcc-scale traces; docs/PERFORMANCE.md)")
	portfolio := flag.Bool("portfolio", false, "race solver strategies per feasibility query (incremental vs stateless vs interval prefilter; docs/PERFORMANCE.md)")
	portfolioBatch := flag.Bool("portfolio-batch", false, "defer feasibility verdicts and decide all targets in one batched solver call (shared trace prefixes asserted once)")
	traceFile := flag.String("trace-file", "", "record each candidate path to this binary trace file (.N suffix per extra target)")
	concTrace := flag.String("conc-trace", "", "slice a recorded multi-threaded PSTRC02 trace of file.mc (docs/CONCURRENCY.md) instead of searching for a path")
	stream := flag.Bool("stream", false, "slice by streaming from -trace-file (bounded resident frames) instead of from memory")
	trace := flag.Bool("trace", false, "print the annotated backward pass (live sets and step locations, like Fig. 1(C))")
	traceOut := flag.String("trace-out", "", "write a JSONL trace event log to this file (\"-\" for stderr) and print the per-phase table")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :8080)")
	solverStats := flag.Bool("solver-stats", false, "print the smt_* counter table (incremental reuse, warm starts, cache) to stderr on exit")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline per target (0 = none); expiry degrades to a sound superset slice")
	faultCfg := faults.FlagConfig(flag.CommandLine)
	verbose := flag.Bool("v", false, "print the input path and the slice")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pathslice [flags] file.mc")
		flag.Usage()
		os.Exit(exitUsage)
	}
	if *stream && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "pathslice: -stream requires -trace-file")
		os.Exit(exitUsage)
	}
	if cfg := faultCfg(); cfg != nil {
		faults.Install(faults.New(*cfg))
	}
	shutdown, err := obs.Setup(*traceOut, *metricsAddr)
	if err != nil {
		fatal(err)
	}
	if *solverStats {
		obs.Default().SetEnabled(true)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := compile.Source(string(src))
	if err != nil {
		fatal(err)
	}
	locs := prog.ErrorLocs()
	if len(locs) == 0 {
		fatal(fmt.Errorf("%s: no error locations (use `error;` or `assert(...)`)", flag.Arg(0)))
	}
	slicer := core.NewWithOptions(prog, core.Options{
		EarlyUnsatStop: *early,
		SkipFunctions:  *skip,
		Summaries:      *summaries,
		RecordTrace:    *trace,
		Portfolio:      *portfolio,
	})
	feasible, undecided := 0, 0
	if *concTrace != "" {
		runConcTrace(slicer, prog, *concTrace, *deadline, *verbose, &feasible, &undecided)
		if err := shutdown(); err != nil {
			fatal(err)
		}
		switch {
		case feasible > 0:
			os.Exit(exitUnsafe)
		case undecided > 0:
			os.Exit(exitTimeout)
		}
		return
	}
	// -portfolio-batch defers the per-target feasibility verdicts and
	// decides them all in one grouped solver call after the loop.
	var batchTargets []*cfa.Loc
	var batchSlices []cfa.Path
	for ti, target := range locs {
		var path cfa.Path
		if *long {
			path = cfa.WalkLongPath(prog, target, *unroll, 0)
		}
		if path == nil {
			path = cfa.FindPath(prog, target, cfa.FindOptions{})
		}
		if path == nil {
			fmt.Printf("%s: unreachable in the CFA graph\n", target)
			continue
		}
		ctx := context.Background()
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}
		var res *core.Result
		if *traceFile != "" {
			tf := *traceFile
			if ti > 0 {
				tf = fmt.Sprintf("%s.%d", *traceFile, ti)
			}
			if werr := cfa.WriteTraceFile(tf, prog, path); werr != nil {
				fatal(werr)
			}
			if *stream {
				r, oerr := cfa.OpenTraceFile(tf, prog)
				if oerr != nil {
					fatal(oerr)
				}
				res, err = slicer.SliceStream(ctx, r)
				peak := r.FramesPeak()
				if cerr := r.Close(); err == nil && cerr != nil {
					err = cerr
				}
				if err == nil {
					fmt.Printf("%s: streamed %d edges from %s, peak resident frames %d\n",
						target, res.Stats.InputEdges, tf, peak)
				}
			}
		}
		if res == nil && err == nil {
			res, err = slicer.SliceCtx(ctx, path)
		}
		if err != nil {
			fatal(err)
		}
		if res.Degraded {
			fmt.Printf("%s: DEGRADED slice (deadline or unanswered analysis query; superset, still sound)\n", target)
		}
		st := res.Stats
		fmt.Printf("%s: path %d edges (%d blocks) -> slice %d edges (%d blocks), %.2f%%\n",
			target, st.InputEdges, st.InputBlocks, st.SliceEdges, st.SliceBlocks, 100*st.Ratio())
		if slicer.Summ != nil {
			fmt.Printf("  summaries: %d hits, %d misses (memo %d contexts, %d bytes)\n",
				st.SummaryHits, st.SummaryMisses, slicer.Summ.Len(), slicer.Summ.Bytes())
		}
		if *verbose {
			fmt.Printf("--- path ---\n%s--- slice ---\n%s", path, res.Slice)
		}
		if *trace {
			fmt.Printf("--- annotated backward pass ---\n%s", report.AnnotatedTrace(path, res))
		}
		fmt.Print("  ", report.SliceSummary(res))
		if res.KnownInfeasible {
			fmt.Printf("  verdict: INFEASIBLE (early stop after %d solver checks)\n", st.SolverChecks)
			continue
		}
		if *portfolioBatch {
			batchTargets = append(batchTargets, target)
			batchSlices = append(batchSlices, res.Slice)
			continue
		}
		fr, _ := slicer.CheckFeasibilityCtx(ctx, res.Slice)
		printVerdict(fr, &feasible, &undecided)
	}
	if len(batchSlices) > 0 {
		ctx := context.Background()
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}
		for i, fr := range slicer.CheckFeasibilityBatchCtx(ctx, batchSlices, nil, 1) {
			fmt.Printf("%s:", batchTargets[i])
			printVerdict(fr, &feasible, &undecided)
		}
	}
	if *solverStats {
		fmt.Fprintln(os.Stderr, "solver counters:")
		_ = obs.WriteCounterTable(os.Stderr, "smt_")
	}
	if err := shutdown(); err != nil {
		fatal(err)
	}
	switch {
	case feasible > 0:
		os.Exit(exitUnsafe)
	case undecided > 0:
		os.Exit(exitTimeout)
	}
}

// runConcTrace slices one recorded multi-threaded trace with the
// two-phase concurrent walk and reports the racy-edge structure plus
// the recorded interleaving's feasibility verdict.
func runConcTrace(slicer *core.Slicer, prog *cfa.Program, file string, deadline time.Duration, verbose bool, feasible, undecided *int) {
	tr, err := cfa.ReadConcTraceFile(file, prog)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	res, err := slicer.ConcSliceCtx(ctx, tr)
	if err != nil {
		fatal(err)
	}
	if res.Degraded {
		fmt.Printf("%s: DEGRADED slice (deadline expiry; superset, still sound)\n", file)
	}
	st := res.Stats
	fmt.Printf("%s: %d threads, trace %d events -> slice %d events, %.2f%%\n",
		file, st.Threads, st.InputEdges, st.SliceEdges, 100*st.Ratio())
	fmt.Printf("  %d racy edges cut %d instruction regions; %d frames, %d whole threads skipped\n",
		st.RacyEdges, st.Regions, st.SkippedFrames, st.SkippedThreads)
	if verbose {
		fmt.Printf("--- trace ---\n%s--- slice ---\n%s", tr, res.Slice)
	}
	fr, _ := slicer.CheckConcFeasibility(res.Slice)
	// The verdict speaks only for the recorded interleaving; an Unsat
	// here does not rule out other legal reorderings.
	printVerdict(fr, feasible, undecided)
}

// printVerdict renders one feasibility result and updates the exit-code
// tallies (shared by the inline and the batched verdict paths).
func printVerdict(fr smt.Result, feasible, undecided *int) {
	switch fr.Status {
	case smt.StatusSat:
		fmt.Printf("  verdict: FEASIBLE — the error location is reachable (modulo termination)\n")
		if fr.Model != nil {
			fmt.Printf("  witness state: %v\n", fr.Model)
		}
		*feasible++
	case smt.StatusUnsat:
		fmt.Printf("  verdict: INFEASIBLE — this path (and its variants) cannot reach the target\n")
	default:
		fmt.Printf("  verdict: UNKNOWN (solver limits, deadline, or injected fault)\n")
		*undecided++
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pathslice:", err)
	os.Exit(exitInternal)
}
