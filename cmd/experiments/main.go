// Command experiments regenerates the paper's evaluation artifacts
// (§5): Table 1, Figure 5, and Figure 6, over the synthetic benchmark
// suite. Absolute numbers differ from the paper (2005 hardware, real C
// subjects); the reproduced claims are the shapes: which benchmarks are
// safe/buggy/timeout, and that slice ratios fall below 1% (application
// benchmarks) and 0.1% (gcc-class) as traces grow.
//
// Usage:
//
//	experiments [-table1] [-fig5] [-fig6] [-scale f] [-gccscale f] [-traces n]
//	            [-deadline d] [-fault-* ...] [-trace-out f] [-metrics-addr a]
//
// Without flags, all three artifacts are produced.
//
// Robustness (docs/ROBUSTNESS.md): -deadline bounds each cluster check
// (expiry rolls into the timeout column, never a wrong verdict);
// -fault-* installs the deterministic fault injector — useful for
// measuring how gracefully the tables degrade under solver trouble.
//
// Exit codes: 0 all checks safe, 1 internal error, 2 usage, 3 some
// benchmark check reported a bug, 4 some check timed out and none
// reported a bug. Note the synthetic suite intentionally contains
// buggy and timeout rows, so a successful full reproduction exits 3.
//
// Observability (docs/OBSERVABILITY.md): -trace-out writes a JSONL
// event log ("-" for stderr) and prints the per-phase time/call table
// on exit; -metrics-addr serves /metrics, /debug/vars, /debug/pprof —
// useful for watching a long gcc-class run converge.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"pathslice/internal/bench"
	"pathslice/internal/cegar"
	"pathslice/internal/faults"
	"pathslice/internal/obs"
	"pathslice/internal/synth"
)

// Exit codes (shared by all three binaries, docs/ROBUSTNESS.md).
const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
	exitUnsafe   = 3
	exitTimeout  = 4
)

func main() {
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	fig5 := flag.Bool("fig5", false, "regenerate Figure 5")
	fig6 := flag.Bool("fig6", false, "regenerate Figure 6")
	muh := flag.Bool("muh", false, "reproduce the §5 muh heap-imprecision limitation")
	gccTable := flag.Bool("gcctable", false, "reproduce the §5 gcc partial-completion result (76 of 132 checks finished)")
	scale := flag.Float64("scale", 0.35, "workload scale for Table 1 / Figure 5")
	gccScale := flag.Float64("gccscale", 0.25, "workload scale for the gcc-class subject")
	traces := flag.Int("traces", 313, "number of gcc counterexamples for Figure 6 (paper: 313)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel cluster checks")
	solverWorkers := flag.Int("solver-workers", 1, "parallel per-predicate solver queries inside each abstract post")
	portfolio := flag.Bool("portfolio", false, "race solver strategies per entailment query (docs/PERFORMANCE.md)")
	portfolioBatch := flag.Bool("portfolio-batch", false, "batch each abstract post's entailment queries into grouped incremental solver calls")
	noCache := flag.Bool("nocache", false, "disable the solver result cache and abstract-post memoization")
	traceOut := flag.String("trace-out", "", "write a JSONL trace event log to this file (\"-\" for stderr) and print the per-phase table")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :8080)")
	solverStats := flag.Bool("solver-stats", false, "print the smt_* counter table (incremental reuse, warm starts, cache) to stderr on exit")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline per cluster check (0 = none); expiry counts as a timeout row")
	faultCfg := faults.FlagConfig(flag.CommandLine)
	flag.Parse()
	all := !*table1 && !*fig5 && !*fig6 && !*muh && !*gccTable
	if cfg := faultCfg(); cfg != nil {
		faults.Install(faults.New(*cfg))
	}

	shutdown, err := obs.Setup(*traceOut, *metricsAddr)
	if err != nil {
		fatal(err)
	}
	if *solverStats {
		obs.Default().SetEnabled(true)
	}
	var totalChecks, totalSolverCalls int64
	var totalUnsafe, totalTimeout int64
	tally := func(row *bench.BenchmarkResult) {
		totalChecks += int64(row.Clusters)
		totalSolverCalls += row.SolverCalls
		totalUnsafe += int64(row.Err)
		totalTimeout += int64(row.Timeout)
	}

	var rows []*bench.BenchmarkResult
	if *table1 || *fig5 || all {
		fmt.Printf("running Table 1 checks at scale %.2f ...\n", *scale)
		for _, p := range synth.PaperProfiles(*scale) {
			row, err := bench.RunBenchmarkParallel(p, cegar.Options{
				UseSlicing:         true,
				MaxWork:            60000,
				SolverWorkers:      *solverWorkers,
				Portfolio:          *portfolio,
				PortfolioBatch:     *portfolioBatch,
				DisableSolverCache: *noCache,
				DisablePostMemo:    *noCache,
				Deadline:           *deadline,
			}, *workers)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-8s done: %d/%d/%d (safe/error/timeout), %d refinements, %d solver calls (cache hit %.0f%%, memo hits %d)\n",
				p.Name, row.Safe, row.Err, row.Timeout, row.Refinements,
				row.SolverCalls, 100*row.CacheHitRate(), row.PostMemoHits)
			tally(row)
			rows = append(rows, row)
		}
	}
	if *table1 || all {
		fmt.Println()
		fmt.Print(bench.RenderTable1(rows))
		fmt.Println()
	}

	if *fig5 || all {
		// Figure 5 pools (a) the CEGAR counterexamples from the Table 1
		// runs and (b) a sweep of long candidate traces, covering the
		// large-trace regime the paper plots.
		var all5 []cegar.TraceStat
		for _, row := range rows {
			all5 = append(all5, row.Traces...)
		}
		for _, p := range synth.PaperProfiles(*scale) {
			ins, err := bench.CompileProfile(p)
			if err != nil {
				fatal(err)
			}
			sweep, err := bench.SliceSweep(ins, []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, 150)
			if err != nil {
				fatal(err)
			}
			all5 = append(all5, sweep...)
		}
		pts, skipped := bench.PointsFromTraces(all5)
		bench.SortPoints(pts)
		fmt.Println(bench.RenderScatter("Figure 5: trace projection results (application benchmarks)", pts, skipped))
	}

	if *muh || all {
		// §5, Limitations: muh keeps file pointers in a heap table; the
		// typestate instrumentation cannot track them and most checks
		// "fail" (possible-violation reports that are false alarms).
		p := synth.MuhProfile(*scale)
		row, err := bench.RunBenchmarkParallel(p, cegar.Options{
			UseSlicing: true, MaxWork: 60000, Deadline: *deadline,
			Portfolio: *portfolio, PortfolioBatch: *portfolioBatch,
		}, *workers)
		if err != nil {
			fatal(err)
		}
		tally(row)
		fmt.Printf("muh (IRC proxy, heap-stored handles): %d checks -> %d reported violations, %d safe, %d timeout\n",
			row.Clusters, row.Err, row.Safe, row.Timeout)
		fmt.Printf("  (paper: 9 of 14 instrumented functions failed — imprecise heap modeling;\n")
		fmt.Printf("   the reported violations here are the same kind of false alarm)\n\n")
	}

	if *gccTable || all {
		// §5: "Of the 132 checks we ran on, only 76 finished in the
		// allotted time of 1200s per query ... the time was dominated
		// by the computation of By and WrBt." We run the gcc-class
		// clusters under a deliberately tight work budget and report
		// how many finish.
		p := synth.GccProfile(*gccScale)
		row, err := bench.RunBenchmarkParallel(p, cegar.Options{
			UseSlicing:     true,
			MaxWork:        55000, // tight: the gcc regime overwhelms roughly half the checks
			Deadline:       *deadline,
			Portfolio:      *portfolio,
			PortfolioBatch: *portfolioBatch,
		}, *workers)
		if err != nil {
			fatal(err)
		}
		tally(row)
		finished := row.Safe + row.Err
		fmt.Printf("gcc-class under a tight per-check budget: %d of %d checks finished (%d safe, %d error, %d timeout)\n",
			finished, row.Clusters, row.Safe, row.Err, row.Timeout)
		fmt.Printf("  (paper: 76 of 132 finished within 1200s/query)\n\n")
	}

	if *fig6 || all {
		p := synth.GccProfile(*gccScale)
		ins, err := bench.CompileProfile(p)
		if err != nil {
			fatal(err)
		}
		// Grow unrollings until traces reach the paper's ~80k-block
		// regime; stop at the requested count (paper: 313).
		sweep, err := bench.SliceSweep(ins,
			[]int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}, *traces)
		if err != nil {
			fatal(err)
		}
		pts, skipped := bench.PointsFromTraces(sweep)
		bench.SortPoints(pts)
		fmt.Println(bench.RenderScatter(
			fmt.Sprintf("Figure 6: trace projection results for gcc-class (%d counterexamples)", len(pts)), pts, skipped))
	}

	// The trace log's cegar_solver_calls counter is defined to equal
	// the sum of per-cluster Result.SolverCalls over every benchmark
	// run this invocation performed (docs/OBSERVABILITY.md).
	obs.RecordCounter("cegar_solver_calls", totalSolverCalls)
	obs.RecordCounter("cegar_checks", totalChecks)
	if *solverStats {
		fmt.Fprintln(os.Stderr, "solver counters:")
		_ = obs.WriteCounterTable(os.Stderr, "smt_")
	}
	if err := shutdown(); err != nil {
		fatal(err)
	}
	switch {
	case totalUnsafe > 0:
		os.Exit(exitUnsafe)
	case totalTimeout > 0:
		os.Exit(exitTimeout)
	}
	os.Exit(exitOK)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(exitInternal)
}
