// Command blastlite runs the CEGAR model checker on a MiniC program,
// with path slicing in the counterexample analysis phase (the way the
// paper deploys Algorithm PathSlice inside BLAST).
//
// Usage:
//
//	blastlite [-noslice] [-summaries] [-trace-file f] [-dfs]
//	          [-file-property] [-maxwork n] [-workers n]
//	          [-portfolio] [-portfolio-batch] [-deadline d]
//	          [-fault-* ...] [-trace-out f] [-metrics-addr a] [-v] file.mc
//
// With -file-property the program may call the fopen/fclose/fgets/
// fprintf/fputs intrinsics; it is instrumented for the file-handling
// property of §5 and each check cluster is verified independently.
//
// Robustness (docs/ROBUSTNESS.md): -deadline bounds the wall-clock time
// of each check (expiry yields a "timeout" verdict, never a wrong one);
// the -fault-* flags install the deterministic fault injector.
//
// Exit codes: 0 every check safe, 1 internal error, 2 usage, 3 a
// feasible counterexample was found, 4 some check timed out or was
// undecided (and none found a bug).
//
// Observability (docs/OBSERVABILITY.md): -trace-out writes a JSONL
// event log ("-" for stderr) and prints the per-phase time/call table
// on exit; -metrics-addr serves /metrics (Prometheus text),
// /debug/vars, and /debug/pprof over HTTP while the check runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/faults"
	"pathslice/internal/instrument"
	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
	"pathslice/internal/obs"
)

// Exit codes (shared by all three binaries, docs/ROBUSTNESS.md).
const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
	exitUnsafe   = 3
	exitTimeout  = 4
)

func main() {
	noslice := flag.Bool("noslice", false, "disable path slicing (raw counterexample analysis)")
	summaries := flag.Bool("summaries", false, "memoize context-keyed frame summaries in the counterexample slicer (docs/PERFORMANCE.md)")
	traceFile := flag.String("trace-file", "", "record each feasible witness path to this binary trace file (.N suffix per extra witness)")
	dfs := flag.Bool("dfs", false, "depth-first abstract search (long counterexamples)")
	fileProp := flag.Bool("file-property", false, "instrument and check the file-handling property")
	lockProp := flag.Bool("lock-property", false, "instrument and check the lock discipline property")
	maxWork := flag.Int("maxwork", 0, "work budget per check (0 = default)")
	workers := flag.Int("workers", 1, "CEGAR solver workers: parallel per-predicate entailment queries in the abstract post")
	portfolio := flag.Bool("portfolio", false, "race solver strategies per entailment query (incremental vs stateless vs interval prefilter; docs/PERFORMANCE.md)")
	portfolioBatch := flag.Bool("portfolio-batch", false, "batch the abstract post's independent entailment queries into grouped incremental solver calls")
	noCache := flag.Bool("nocache", false, "disable the solver result cache and abstract-post memoization")
	traceOut := flag.String("trace-out", "", "write a JSONL trace event log to this file (\"-\" for stderr) and print the per-phase table")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (e.g. :8080)")
	solverStats := flag.Bool("solver-stats", false, "print the smt_* counter table (incremental reuse, warm starts, cache) to stderr on exit")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline per check (0 = none); expiry reports a timeout verdict")
	faultCfg := faults.FlagConfig(flag.CommandLine)
	verbose := flag.Bool("v", false, "print witnesses")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: blastlite [flags] file.mc")
		flag.Usage()
		os.Exit(exitUsage)
	}
	if cfg := faultCfg(); cfg != nil {
		faults.Install(faults.New(*cfg))
	}
	shutdown, err := obs.Setup(*traceOut, *metricsAddr)
	if err != nil {
		fatal(err)
	}
	if *solverStats {
		obs.Default().SetEnabled(true)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opts := cegar.Options{
		UseSlicing:         !*noslice,
		DFS:                *dfs,
		MaxWork:            *maxWork,
		SolverWorkers:      *workers,
		Portfolio:          *portfolio,
		PortfolioBatch:     *portfolioBatch,
		DisableSolverCache: *noCache,
		DisablePostMemo:    *noCache,
		Deadline:           *deadline,
		SlicerOpts:         core.Options{Summaries: *summaries, Portfolio: *portfolio},
	}

	var totals checkTotals
	totals.TraceFile = *traceFile
	if *fileProp {
		checkProperty(string(src), opts, *verbose, &totals, instrument.Instrument)
	} else if *lockProp {
		checkProperty(string(src), opts, *verbose, &totals, instrument.InstrumentLocks)
	} else {
		prog, err := compile.Source(string(src))
		if err != nil {
			fatal(err)
		}
		checkProgram(prog, opts, *verbose, &totals)
	}
	// The trace log's cegar_solver_calls counter is defined to equal
	// the sum of Result.SolverCalls over every check this run
	// performed (docs/OBSERVABILITY.md).
	obs.RecordCounter("cegar_solver_calls", totals.SolverCalls)
	obs.RecordCounter("cegar_checks", totals.Checks)
	if *solverStats {
		fmt.Fprintln(os.Stderr, "solver counters:")
		_ = obs.WriteCounterTable(os.Stderr, "smt_")
	}
	if err := shutdown(); err != nil {
		fatal(err)
	}
	os.Exit(totals.exitCode())
}

// checkTotals accumulates run-wide counters for the trace summary and
// the process exit code.
type checkTotals struct {
	Checks      int64
	SolverCalls int64
	Unsafe      int64 // checks with a feasible counterexample
	Undecided   int64 // timeout / diverged / unknown checks

	// TraceFile, when set, records each feasible witness path in the
	// binary PSTRC trace format (a .N suffix distinguishes witnesses
	// after the first).
	TraceFile string
}

// exitCode maps the run's verdicts to the shared exit-code scheme: a
// found bug dominates, then undecided checks, then all-safe.
func (t *checkTotals) exitCode() int {
	switch {
	case t.Unsafe > 0:
		return exitUnsafe
	case t.Undecided > 0:
		return exitTimeout
	}
	return exitOK
}

func checkProgram(prog *cfa.Program, opts cegar.Options, verbose bool, totals *checkTotals) {
	locs := prog.ErrorLocs()
	if len(locs) == 0 {
		fmt.Println("no error locations to check")
		return
	}
	checker := cegar.New(prog, opts)
	for _, target := range locs {
		r := checker.Check(target)
		totals.Checks++
		totals.SolverCalls += r.SolverCalls
		switch {
		case r.Verdict == cegar.VerdictUnsafe:
			totals.Unsafe++
			recordWitness(prog, r.Witness, totals)
		case !r.Verdict.Decided():
			totals.Undecided++
		}
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "blastlite: %s: contained internal error: %v\n", target, r.Err)
		}
		fmt.Printf("%s: %s (refinements %d, work %d, predicates %d, solver calls %d, cache %d/%d hit, memo hits %d)\n",
			target, r.Verdict, r.Refinements, r.Work, r.Predicates,
			r.SolverCalls, r.CacheHits, r.CacheHits+r.CacheMisses, r.PostMemoHits)
		if verbose && r.Verdict == cegar.VerdictUnsafe {
			fmt.Printf("--- witness slice (%d edges) ---\n%s", len(r.Witness), r.Witness)
		}
		for _, ts := range r.Traces {
			fmt.Printf("  trace %d blocks -> slice %d blocks (%.2f%%)\n",
				ts.TraceBlocks, ts.SliceBlocks, ts.RatioPercent())
		}
	}
}

// recordWitness writes a feasible witness to totals.TraceFile in the
// PSTRC format. A sliced witness is a subsequence, not a contiguous
// program path, so recording needs -noslice (the raw counterexample);
// otherwise we say so instead of writing a file OpenTraceFile would
// reject.
func recordWitness(prog *cfa.Program, witness cfa.Path, totals *checkTotals) {
	if totals.TraceFile == "" || len(witness) == 0 {
		return
	}
	tf := totals.TraceFile
	if totals.Unsafe > 1 {
		tf = fmt.Sprintf("%s.%d", totals.TraceFile, totals.Unsafe-1)
	}
	if err := witness.Validate(prog); err != nil {
		fmt.Fprintf(os.Stderr, "blastlite: -trace-file: witness is a slice, not a contiguous path; rerun with -noslice to record raw traces\n")
		return
	}
	if err := cfa.WriteTraceFile(tf, prog, witness); err != nil {
		fmt.Fprintf(os.Stderr, "blastlite: -trace-file: %v\n", err)
		return
	}
	fmt.Printf("  witness trace recorded: %s (%d edges)\n", tf, len(witness))
}

func checkProperty(src string, opts cegar.Options, verbose bool, totals *checkTotals,
	pass func(*ast.Program) (*instrument.Result, error)) {
	sp := obs.StartSpan(obs.PhaseParse)
	astProg, err := parser.Parse([]byte(src))
	sp.End()
	if err != nil {
		fatal(err)
	}
	ins, err := pass(astProg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instrumented: %d check functions, %d sites\n", len(ins.Clusters), ins.TotalSites)
	for _, cl := range ins.Clusters {
		clusterProg, err := instrument.ForCluster(ins.Prog, cl.Function)
		if err != nil {
			fatal(err)
		}
		sp = obs.StartSpan(obs.PhaseTypecheck)
		info, err := types.Check(clusterProg)
		sp.End()
		if err != nil {
			fatal(err)
		}
		sp = obs.StartSpan(obs.PhaseCFA)
		cprog, err := cfa.Build(info)
		sp.End()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== cluster %s (%d sites)\n", cl.Function, cl.Sites)
		checkProgram(cprog, opts, verbose, totals)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blastlite:", err)
	os.Exit(exitInternal)
}
