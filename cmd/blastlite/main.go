// Command blastlite runs the CEGAR model checker on a MiniC program,
// with path slicing in the counterexample analysis phase (the way the
// paper deploys Algorithm PathSlice inside BLAST).
//
// Usage:
//
//	blastlite [-noslice] [-dfs] [-file-property] [-maxwork n] [-workers n] [-v] file.mc
//
// With -file-property the program may call the fopen/fclose/fgets/
// fprintf/fputs intrinsics; it is instrumented for the file-handling
// property of §5 and each check cluster is verified independently.
package main

import (
	"flag"
	"fmt"
	"os"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/instrument"
	"pathslice/internal/lang/ast"
	"pathslice/internal/lang/parser"
	"pathslice/internal/lang/types"
)

func main() {
	noslice := flag.Bool("noslice", false, "disable path slicing (raw counterexample analysis)")
	dfs := flag.Bool("dfs", false, "depth-first abstract search (long counterexamples)")
	fileProp := flag.Bool("file-property", false, "instrument and check the file-handling property")
	lockProp := flag.Bool("lock-property", false, "instrument and check the lock discipline property")
	maxWork := flag.Int("maxwork", 0, "work budget per check (0 = default)")
	workers := flag.Int("workers", 1, "CEGAR solver workers: parallel per-predicate entailment queries in the abstract post")
	noCache := flag.Bool("nocache", false, "disable the solver result cache and abstract-post memoization")
	verbose := flag.Bool("v", false, "print witnesses")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: blastlite [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opts := cegar.Options{
		UseSlicing:         !*noslice,
		DFS:                *dfs,
		MaxWork:            *maxWork,
		SolverWorkers:      *workers,
		DisableSolverCache: *noCache,
		DisablePostMemo:    *noCache,
	}

	if *fileProp {
		checkProperty(string(src), opts, *verbose, instrument.Instrument)
		return
	}
	if *lockProp {
		checkProperty(string(src), opts, *verbose, instrument.InstrumentLocks)
		return
	}
	prog, err := compile.Source(string(src))
	if err != nil {
		fatal(err)
	}
	checkProgram(prog, opts, *verbose)
}

func checkProgram(prog *cfa.Program, opts cegar.Options, verbose bool) {
	locs := prog.ErrorLocs()
	if len(locs) == 0 {
		fmt.Println("no error locations to check")
		return
	}
	checker := cegar.New(prog, opts)
	for _, target := range locs {
		r := checker.Check(target)
		fmt.Printf("%s: %s (refinements %d, work %d, predicates %d, solver calls %d, cache %d/%d hit, memo hits %d)\n",
			target, r.Verdict, r.Refinements, r.Work, r.Predicates,
			r.SolverCalls, r.CacheHits, r.CacheHits+r.CacheMisses, r.PostMemoHits)
		if verbose && r.Verdict == cegar.VerdictUnsafe {
			fmt.Printf("--- witness slice (%d edges) ---\n%s", len(r.Witness), r.Witness)
		}
		for _, ts := range r.Traces {
			fmt.Printf("  trace %d blocks -> slice %d blocks (%.2f%%)\n",
				ts.TraceBlocks, ts.SliceBlocks, ts.RatioPercent())
		}
	}
}

func checkProperty(src string, opts cegar.Options, verbose bool,
	pass func(*ast.Program) (*instrument.Result, error)) {
	astProg, err := parser.Parse([]byte(src))
	if err != nil {
		fatal(err)
	}
	ins, err := pass(astProg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instrumented: %d check functions, %d sites\n", len(ins.Clusters), ins.TotalSites)
	for _, cl := range ins.Clusters {
		clusterProg, err := instrument.ForCluster(ins.Prog, cl.Function)
		if err != nil {
			fatal(err)
		}
		info, err := types.Check(clusterProg)
		if err != nil {
			fatal(err)
		}
		cprog, err := cfa.Build(info)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== cluster %s (%d sites)\n", cl.Function, cl.Sites)
		checkProgram(cprog, opts, verbose)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blastlite:", err)
	os.Exit(1)
}
