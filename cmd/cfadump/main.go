// Command cfadump prints the control flow automata of a MiniC program,
// as text or Graphviz dot, optionally highlighting the path slice to an
// error location.
//
// Usage:
//
//	cfadump [-dot] [-fn name] [-slice] file.mc
//	cfadump -dot -slice prog.mc | dot -Tsvg > prog.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of text")
	fn := flag.String("fn", "", "restrict to one function")
	slice := flag.Bool("slice", false, "highlight the path slice to the first error location")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cfadump [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := compile.Source(string(src))
	if err != nil {
		fatal(err)
	}
	var highlight map[int]bool
	if *slice {
		locs := prog.ErrorLocs()
		if len(locs) == 0 {
			fatal(fmt.Errorf("-slice: program has no error locations"))
		}
		path := cfa.FindPath(prog, locs[0], cfa.FindOptions{})
		if path == nil {
			fatal(fmt.Errorf("-slice: no path to %s", locs[0]))
		}
		res, err := core.New(prog).Slice(path)
		if err != nil {
			fatal(err)
		}
		highlight = cfa.HighlightPath(res.Slice)
	}
	if *dot {
		opts := cfa.DotOptions{Highlight: highlight}
		if *fn != "" {
			opts.Funcs = []string{*fn}
		}
		fmt.Print(prog.Dot(opts))
		return
	}
	if *fn != "" {
		f := prog.Funcs[*fn]
		if f == nil {
			fatal(fmt.Errorf("no function %s", *fn))
		}
		fmt.Printf("cfa %s entry=%s exit=%s\n", f.Name, f.Entry, f.Exit)
		for _, e := range f.Edges {
			marker := "  "
			if highlight[e.ID] {
				marker = "* "
			}
			fmt.Printf("%s%s\n", marker, e)
		}
		return
	}
	fmt.Print(prog.Dump())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfadump:", err)
	os.Exit(1)
}
