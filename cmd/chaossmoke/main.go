// Command chaossmoke is the network-chaos end-to-end harness for
// slicerd (`make chaos-smoke`, part of `make check`). It builds the
// real daemon, puts the real internal/client behind internal/faults'
// seeded faulty proxy — connection resets, stalls, partial writes,
// byte corruption — and runs traffic through kill/restart cycles,
// asserting the crash-safety contract (docs/ROBUSTNESS.md,
// docs/DEPLOYMENT.md):
//
//   - zero wrong verdicts: the buggy program never answers "ok", the
//     safe program never answers "bug", no matter what the wire does —
//     corruption is caught by the checksum headers and retried,
//     resets and stalls surface as typed retryable errors;
//   - graceful drain on SIGTERM: the daemon exits 0 and saves a
//     warm-state snapshot on the way out;
//   - snapshot restore: the restarted daemon reports restored
//     programs/verdicts in /v1/stats and answers its first request
//     from the warm program cache;
//   - SIGKILL safety: after a hard kill, the periodic snapshot still
//     warms the next boot, and a corrupt snapshot only costs misses;
//   - eventual success: every logical call either answers correctly
//     or fails with a typed, degraded error — and traffic flows again
//     after every restart.
//
// Usage: chaossmoke [-slicerd path] [-seed n] [-requests n].
// Exit code 0 on pass, 1 on any violated assertion.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"pathslice/internal/client"
	"pathslice/internal/faults"
	"pathslice/internal/service"
)

const srcBug = `
int a;
void main() {
  int x = 3;
  if (a == 0) {
    error;
  }
}
`

const srcSafe = `
int x = 0;
int a;
void main() {
  if (a >= 0) {
    x = 1;
  }
  if (a >= 0) {
    if (x == 0) {
      error;
    }
  }
}
`

func main() { os.Exit(run()) }

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "chaossmoke: FAIL: "+format+"\n", args...)
	return 1
}

// daemon is one slicerd process launch.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

func startDaemon(bin, snapPath, token string) (*daemon, error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-admin-addr", "",
		"-max-inflight", "4",
		"-default-deadline", "10s",
		"-drain-timeout", "3s",
		"-snapshot-path", snapPath,
		"-snapshot-every", "300ms",
		"-auth-token", token,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	// The daemon prints "slicerd: api http://ADDR" once bound.
	addrc := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var acc strings.Builder
		for {
			n, err := stdout.Read(buf)
			if n > 0 {
				acc.Write(buf[:n])
				for _, line := range strings.Split(acc.String(), "\n") {
					if rest, ok := strings.CutPrefix(line, "slicerd: api http://"); ok {
						select {
						case addrc <- strings.TrimSpace(rest):
						default:
						}
					}
				}
			}
			if err != nil {
				return
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &daemon{cmd: cmd, addr: addr}, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		return nil, fmt.Errorf("daemon never printed its address")
	}
}

func (d *daemon) signalAndWait(sig syscall.Signal, timeout time.Duration) (int, error) {
	if err := d.cmd.Process.Signal(sig); err != nil {
		return -1, err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0, nil
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), nil
		}
		return -1, err
	case <-time.After(timeout):
		_ = d.cmd.Process.Kill()
		<-done
		return -1, fmt.Errorf("daemon did not exit within %s of %v", timeout, sig)
	}
}

// verdictTally counts outcomes; "wrong" is the one count that must
// stay zero.
type verdictTally struct {
	mu                        sync.Mutex
	decidedBug, decidedOK     int
	undecided, degradedErrors int
	wrong                     []string
}

func (v *verdictTally) record(src string, resp *service.SliceResponse, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err != nil {
		var e *client.Error
		if client.AsError(err, &e) && (e.Retryable() || e.Kind == client.KindDraining || e.Kind == client.KindOverloaded) {
			// A typed, sound give-up after exhausted retries: degraded,
			// not wrong.
			v.degradedErrors++
			return
		}
		v.wrong = append(v.wrong, fmt.Sprintf("untyped/permanent error: %v", err))
		return
	}
	switch {
	case src == srcBug && resp.Verdict == service.VerdictBug && resp.ExitCode == service.ExitBug:
		v.decidedBug++
	case src == srcSafe && resp.Verdict == service.VerdictOK && resp.ExitCode == service.ExitOK:
		v.decidedOK++
	case resp.Verdict == service.VerdictUndecided:
		v.undecided++
	default:
		v.wrong = append(v.wrong, fmt.Sprintf("WRONG verdict %q/exit %d for %s program",
			resp.Verdict, resp.ExitCode, map[string]string{srcBug: "buggy", srcSafe: "safe"}[src]))
	}
}

func run() int {
	binFlag := flag.String("slicerd", "", "prebuilt slicerd binary (default: go build a temp one)")
	seed := flag.Int64("seed", 1, "fault-injection seed for the wire proxy")
	requests := flag.Int("requests", 24, "slice requests per traffic phase")
	flag.Parse()

	tmp, err := os.MkdirTemp("", "chaossmoke-*")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(tmp)
	snapPath := filepath.Join(tmp, "warm.snap")
	const token = "chaos-token"

	bin := *binFlag
	if bin == "" {
		bin = filepath.Join(tmp, "slicerd")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/slicerd").CombinedOutput()
		if err != nil {
			return fail("building slicerd: %v\n%s", err, out)
		}
	}

	// The wire chaos: every fault class on, rates high enough that a
	// 24-request phase sees them all, deterministic under -seed.
	inj := faults.New(faults.Config{
		Seed: *seed,
		Rates: map[faults.Kind]float64{
			faults.ConnReset:    0.12,
			faults.WireStall:    0.08,
			faults.PartialWrite: 0.10,
			faults.CorruptByte:  0.20,
		},
		Stall: 150 * time.Millisecond,
	})

	d, err := startDaemon(bin, snapPath, token)
	if err != nil {
		return fail("starting daemon: %v", err)
	}
	defer func() {
		if d != nil {
			_ = d.cmd.Process.Kill()
			_, _ = d.cmd.Process.Wait()
		}
	}()

	proxy, err := faults.NewProxy("127.0.0.1:0", d.addr, inj)
	if err != nil {
		return fail("starting proxy: %v", err)
	}
	defer proxy.Close()

	cl, err := client.New(client.Options{
		BaseURL:     "http://" + proxy.Addr(),
		AuthToken:   token,
		MaxRetries:  10,
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  400 * time.Millisecond,
		Hedge:       600 * time.Millisecond,
		Seed:        uint64(*seed),
	})
	if err != nil {
		return fail("client: %v", err)
	}

	waitUp := func(what string) error {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			h, err := cl.Health(ctx)
			cancel()
			if err == nil && h.Status == "ok" {
				return nil
			}
			time.Sleep(100 * time.Millisecond)
		}
		return fmt.Errorf("%s: daemon never became healthy through the proxy", what)
	}
	if err := waitUp("boot"); err != nil {
		return fail("%v", err)
	}
	fmt.Printf("chaossmoke: daemon up behind faulty proxy (api %s, proxy %s, seed %d)\n", d.addr, proxy.Addr(), *seed)

	tally := &verdictTally{}
	phase := func(name string) {
		var wg sync.WaitGroup
		for i := 0; i < *requests; i++ {
			src := srcBug
			if i%2 == 1 {
				src = srcSafe
			}
			wg.Add(1)
			go func(src string) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				resp, err := cl.Slice(ctx, &service.SliceRequest{Source: src})
				if err == nil && resp.RequestID == "" {
					tally.mu.Lock()
					tally.wrong = append(tally.wrong, "response missing request_id")
					tally.mu.Unlock()
					return
				}
				tally.record(src, resp, err)
			}(src)
		}
		wg.Wait()
		fmt.Printf("chaossmoke: %s done (%d requests)\n", name, *requests)
	}

	phase("phase 1 (cold boot)")

	// Cycle 1: graceful SIGTERM. The daemon must drain, snapshot, and
	// exit 0; health through the proxy flips away from "ok" on the way.
	code, err := d.signalAndWait(syscall.SIGTERM, 15*time.Second)
	if err != nil {
		return fail("SIGTERM cycle: %v", err)
	}
	if code != 0 {
		return fail("SIGTERM exit code = %d, want 0 (graceful drain)", code)
	}
	if _, err := os.Stat(snapPath); err != nil {
		return fail("no snapshot written on drain: %v", err)
	}
	fmt.Println("chaossmoke: SIGTERM drain clean, snapshot on disk")

	d, err = startDaemon(bin, snapPath, token)
	if err != nil {
		return fail("restart after SIGTERM: %v", err)
	}
	proxy.SetTarget(d.addr)
	if err := waitUp("restart 1"); err != nil {
		return fail("%v", err)
	}

	// The restarted daemon must prove it is warm: restored counters in
	// stats, and the very first slice answers from the program cache.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	st, err := cl.Stats(ctx)
	cancel()
	if err != nil {
		return fail("stats after restart: %v", err)
	}
	if st.Snapshot == nil || st.Snapshot.RestoredPrograms == 0 {
		return fail("restart 1 restored no programs (snapshot=%+v)", st.Snapshot)
	}
	if st.Snapshot.RestoredVerdicts == 0 {
		return fail("restart 1 restored no solver verdicts")
	}
	ctx, cancel = context.WithTimeout(context.Background(), 60*time.Second)
	resp, err := cl.Slice(ctx, &service.SliceRequest{Source: srcBug})
	cancel()
	if err != nil {
		return fail("first slice after restart: %v", err)
	}
	if !resp.Reuse.ProgramCacheHit {
		return fail("first slice after restart was a program-cache miss — snapshot did not warm the LRU")
	}
	tally.record(srcBug, resp, nil)
	fmt.Printf("chaossmoke: restart 1 warm (%d programs, %d summaries, %d verdicts restored; first request was a cache hit)\n",
		st.Snapshot.RestoredPrograms, st.Snapshot.RestoredSummaries, st.Snapshot.RestoredVerdicts)

	phase("phase 2 (warm restart)")

	// Cycle 2: SIGKILL. No drain, no shutdown snapshot — the periodic
	// save loop is all that protects warm-up, and a half-written or
	// stale file must only cost misses.
	if err := d.cmd.Process.Kill(); err != nil {
		return fail("SIGKILL: %v", err)
	}
	_, _ = d.cmd.Process.Wait()
	d, err = startDaemon(bin, snapPath, token)
	if err != nil {
		return fail("restart after SIGKILL: %v", err)
	}
	proxy.SetTarget(d.addr)
	if err := waitUp("restart 2"); err != nil {
		return fail("%v", err)
	}
	ctx, cancel = context.WithTimeout(context.Background(), 20*time.Second)
	st, err = cl.Stats(ctx)
	cancel()
	if err != nil {
		return fail("stats after SIGKILL restart: %v", err)
	}
	if st.Snapshot == nil || st.Snapshot.RestoredPrograms == 0 {
		return fail("SIGKILL restart restored nothing — periodic snapshots not working")
	}
	fmt.Printf("chaossmoke: restart 2 after SIGKILL warm from periodic snapshot (%d programs restored)\n",
		st.Snapshot.RestoredPrograms)

	phase("phase 3 (post-SIGKILL)")

	// Deliberate corruption: flip bytes in the snapshot, restart, and
	// require a clean (cold or partial) boot — dropped records, no
	// crash, still-correct answers.
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		return fail("reading snapshot: %v", err)
	}
	for i := len(raw) / 3; i < len(raw); i += 37 {
		raw[i] ^= 0xff
	}
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		return fail("corrupting snapshot: %v", err)
	}
	if err := d.cmd.Process.Kill(); err != nil {
		return fail("kill before corrupt-restart: %v", err)
	}
	_, _ = d.cmd.Process.Wait()
	d, err = startDaemon(bin, snapPath, token)
	if err != nil {
		return fail("restart on corrupt snapshot: %v", err)
	}
	proxy.SetTarget(d.addr)
	if err := waitUp("restart 3 (corrupt snapshot)"); err != nil {
		return fail("%v", err)
	}
	ctx, cancel = context.WithTimeout(context.Background(), 60*time.Second)
	resp, err = cl.Slice(ctx, &service.SliceRequest{Source: srcBug})
	cancel()
	if err != nil {
		return fail("slice after corrupt-snapshot boot: %v", err)
	}
	tally.record(srcBug, resp, nil)
	fmt.Println("chaossmoke: corrupt snapshot only cost misses (daemon up, verdicts still sound)")

	// Final accounting.
	tally.mu.Lock()
	defer tally.mu.Unlock()
	if len(tally.wrong) > 0 {
		return fail("%d wrong outcomes; first: %s", len(tally.wrong), tally.wrong[0])
	}
	if tally.decidedBug == 0 || tally.decidedOK == 0 {
		return fail("no decided verdicts got through (bug=%d ok=%d) — the chaos drowned everything", tally.decidedBug, tally.decidedOK)
	}
	injected := 0
	for _, k := range []faults.Kind{faults.ConnReset, faults.WireStall, faults.PartialWrite, faults.CorruptByte} {
		n := inj.Injected(k)
		fmt.Printf("chaossmoke: injected %s ×%d\n", k, n)
		injected += int(n)
	}
	if injected == 0 {
		return fail("the proxy injected no faults — the smoke proved nothing")
	}
	fmt.Printf("chaossmoke: %d bug + %d ok decided, %d undecided, %d typed degraded errors, 0 wrong\n",
		tally.decidedBug, tally.decidedOK, tally.undecided, tally.degradedErrors)
	fmt.Println("chaossmoke: PASS")
	return 0
}
