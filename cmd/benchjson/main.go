// Command benchjson runs the scaled benchmark suite once and writes a
// machine-readable JSON record of its wall time, per-row solver-call
// counts, the incremental-solver counters, the early-unsat-stop
// incremental-vs-scratch comparison, the gcc-class summary sweep
// (trace length vs slice time and deterministic walked-edge counts,
// the sublinearity series `make bench-diff` gates on), the slicerd
// cold-vs-warm service round trip (cross-request reuse counters that
// `make bench-diff` also gates on), the snapshot-restart comparison
// (a snapshot-restored server's first request vs a cold server's,
// also gated), the portfolio/batch solving comparison (per-strategy
// win table, batched-vs-serial wall ratio, verdict agreement — all
// gated), the concurrency twin comparison (threaded vs serialized
// walked edges — the cross-thread slicing overhead `make bench-diff`
// gates at 1.5x; docs/CONCURRENCY.md), and the oracle campaign's
// corpus statistics (pairs checked, coverage fingerprints,
// brute-force minimal-slice agreement). It backs `make bench-json`
// (output: BENCH_PR10.json), giving performance and test-coverage work
// a before/after artifact that diffs more honestly than eyeballing
// `go test -bench` output. The host fingerprint lets cmd/benchdiff
// skip wall-time comparisons across different machines while still
// gating the deterministic counters.
//
// Usage:
//
//	benchjson [-out BENCH_PR6.json] [-scale f] [-guards n] [-workers n]
//	          [-oracle-seeds n] [-sweep-reps n]
//
// The suite is intentionally small-scale (default 0.12, the same scale
// the root Table 1 benchmarks use): the artifact is for tracking the
// relative cost of the solving pipeline, not reproducing the paper —
// `go run ./cmd/experiments` does that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"pathslice/internal/bench"
	"pathslice/internal/cegar"
	"pathslice/internal/obs"
	"pathslice/internal/oracle"
	"pathslice/internal/synth"
)

type rowRecord struct {
	Name        string  `json:"name"`
	Clusters    int     `json:"clusters"`
	Safe        int     `json:"safe"`
	Err         int     `json:"err"`
	Timeout     int     `json:"timeout"`
	Refinements int     `json:"refinements"`
	TotalMS     float64 `json:"total_ms"`
	SolverCalls int64   `json:"solver_calls"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
}

// oracleRecord is the campaign's Stats plus the two numbers that are
// methods/unmarshalled fields there: the violation count (zero on any
// run worth committing) and the brute minimal-slice agreement rate.
type oracleRecord struct {
	oracle.Stats
	Violations   int     `json:"violations"`
	MinAgreeRate float64 `json:"brute_min_agree_rate"`
}

type output struct {
	// Host identifies the machine class the timings were taken on;
	// benchdiff compares wall-time metrics only between artifacts with
	// equal fingerprints (deterministic counters are always compared).
	Host string `json:"host"`
	// CalibrationMS times a fixed pure-CPU workload at artifact
	// creation. Two artifacts with the same host fingerprint can still
	// come from VMs with different effective clock speeds; benchdiff
	// divides wall-time metrics by this before comparing, so a slower
	// machine does not read as a code regression.
	CalibrationMS    float64                    `json:"calibration_ms"`
	Scale            float64                    `json:"scale"`
	SuiteWallMS      float64                    `json:"suite_wall_ms"`
	TotalSolverCalls int64                      `json:"total_solver_calls"`
	Rows             []rowRecord                `json:"rows"`
	EarlyUnsatStop   *bench.EarlyStopComparison `json:"early_unsat_stop"`
	// SummarySweep is the gcc-class doubling series (10k/20k/40k trace
	// ops): per-row wall times, summary hit/miss counts, streamed peak
	// resident frames, and the walked-edge counts whose per-doubling
	// growth benchdiff requires to stay sublinear.
	SummarySweep   []bench.SummarySweepRow `json:"summary_sweep"`
	SolverCounters map[string]int64        `json:"solver_counters"`
	Oracle         *oracleRecord           `json:"oracle"`
	// ServiceWarm is the slicerd cold-vs-warm round trip through the
	// real HTTP handler; benchdiff requires the warm request to reuse
	// resident state and beat the cold one within this artifact.
	ServiceWarm *serviceWarmRecord `json:"service_warm"`
	// SnapshotRestart is the cross-restart variant: save a warm
	// server's snapshot, restore it in a fresh server, and compare the
	// restored first request against a cold first request. benchdiff
	// requires the restored request to reuse programs, summaries, and
	// verdicts, drop nothing, and beat the cold one.
	SnapshotRestart *snapshotRestartRecord `json:"snapshot_restart"`
	// Portfolio is the racing-front-end and batched-solving comparison
	// over the guard-chain query corpus: the per-strategy win table,
	// verdict agreement with the stateless reference, and the
	// batched-vs-serial wall ratio. benchdiff requires zero
	// divergences, a batch ratio of at least 1.5, and the portfolio no
	// slower than the incremental engine alone beyond noise.
	Portfolio *portfolioRecord `json:"portfolio"`
	// Concurrency is the twin comparison: one worker workload sliced
	// as a recorded multi-thread interleaving and as its serialized
	// equivalent (docs/CONCURRENCY.md). benchdiff requires the
	// cross-thread walk to visit at most 1.5x the serialized twin's
	// edges, on a genuinely concurrent trace (>= 2 threads, racy
	// edges present).
	Concurrency *bench.ConcComparison `json:"concurrency"`
}

// portfolioRecord embeds the win-table comparison and nests the batch
// run next to it.
type portfolioRecord struct {
	bench.PortfolioComparison
	Batch *bench.BatchComparison `json:"batch"`
}

// hostFingerprint is intentionally coarse: same OS, architecture, CPU
// count, and Go release means timings are roughly comparable.
func hostFingerprint() string {
	return fmt.Sprintf("%s/%s/%dcpu/%s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version())
}

// calibration sink; a package var so the loop cannot be folded away.
var calSink uint64

// calibrate times a fixed single-threaded integer workload (~100ms),
// best of three. The absolute number is meaningless; only the ratio
// between two artifacts' calibrations is used.
func calibrate() float64 {
	best := 0.0
	for r := 0; r < 3; r++ {
		t0 := time.Now()
		x := uint64(0x9e3779b97f4a7c15)
		for i := 0; i < 100_000_000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			x ^= x >> 29
		}
		calSink += x
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if best == 0 || ms < best {
			best = ms
		}
	}
	return best
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output path")
	scale := flag.Float64("scale", 0.12, "workload scale for the Table 1 profiles")
	guards := flag.Int("guards", 300, "guard-chain length for the early-unsat-stop comparison")
	workers := flag.Int("workers", 1, "parallel cluster checks (1 keeps timings comparable)")
	oracleSeeds := flag.Int("oracle-seeds", 140, "oracle campaign size (0 skips the campaign)")
	sweepReps := flag.Int("sweep-reps", 5, "timed repetitions per summary-sweep point (best is kept)")
	flag.Parse()

	obs.Default().SetEnabled(true)

	var o output
	o.Host = hostFingerprint()
	o.CalibrationMS = calibrate()
	o.Scale = *scale
	t0 := time.Now()
	for _, p := range synth.PaperProfiles(*scale) {
		row, err := bench.RunBenchmarkParallel(p, cegar.Options{
			UseSlicing: true,
			MaxWork:    30000,
		}, *workers)
		if err != nil {
			fatal(err)
		}
		o.Rows = append(o.Rows, rowRecord{
			Name:        row.Profile.Name,
			Clusters:    row.Clusters,
			Safe:        row.Safe,
			Err:         row.Err,
			Timeout:     row.Timeout,
			Refinements: row.Refinements,
			TotalMS:     float64(row.TotalTime.Microseconds()) / 1000,
			SolverCalls: row.SolverCalls,
			CacheHits:   row.CacheHits,
			CacheMisses: row.CacheMisses,
		})
		o.TotalSolverCalls += row.SolverCalls
	}
	o.SuiteWallMS = float64(time.Since(t0).Microseconds()) / 1000

	// Best-of-N like the summary sweep: the deterministic check counts
	// are identical across repetitions, so keeping the fastest timing
	// only strips scheduler noise from the artifact.
	cmpRes, err := bench.CompareEarlyStop(*guards)
	if err != nil {
		fatal(err)
	}
	for i := 1; i < *sweepReps; i++ {
		again, err := bench.CompareEarlyStop(*guards)
		if err != nil {
			fatal(err)
		}
		if again.SolverChecks != cmpRes.SolverChecks {
			fatal(fmt.Errorf("early-unsat-stop check count not deterministic: %d vs %d",
				again.SolverChecks, cmpRes.SolverChecks))
		}
		if again.IncrementalMS < cmpRes.IncrementalMS {
			cmpRes = again
		}
	}
	o.EarlyUnsatStop = cmpRes

	// The gcc-class doubling series: unrollings chosen so the traces
	// land near 10k, 20k, and 40k operations with DefaultGccConfig.
	o.SummarySweep, err = bench.SummarySweep(bench.DefaultGccConfig(), []int{43, 86, 172}, *sweepReps)
	if err != nil {
		fatal(err)
	}

	o.SolverCounters = make(map[string]int64)
	for _, c := range obs.Default().Snapshot().Counters {
		if strings.HasPrefix(c.Name, "smt_") {
			o.SolverCounters[c.Name] = c.Value
		}
	}

	if *oracleSeeds > 0 {
		stats := oracle.Run(oracle.Config{
			Seeds:     *oracleSeeds,
			Budget:    30 * time.Second,
			Seed:      1,
			CorpusDir: "testdata/oracle",
		})
		o.Oracle = &oracleRecord{
			Stats:        *stats,
			Violations:   len(stats.Violations),
			MinAgreeRate: stats.MinAgreeRate(),
		}
	}

	// Portfolio and batch comparisons over the same guard-chain length
	// as the early-stop benchmark, sampled every 12th assume so the
	// corpus stays call-heavy (~26 queries of growing shared prefix).
	pc, err := bench.BestPortfolioComparison(*guards, 12, *sweepReps)
	if err != nil {
		fatal(err)
	}
	bc, err := bench.BestBatchComparison(*guards, 12, *sweepReps)
	if err != nil {
		fatal(err)
	}
	o.Portfolio = &portfolioRecord{PortfolioComparison: *pc, Batch: bc}

	o.Concurrency, err = bench.CompareConcTwin(bench.DefaultConcTwinConfig(), *sweepReps)
	if err != nil {
		fatal(err)
	}

	o.ServiceWarm, err = runServiceWarm()
	if err != nil {
		fatal(err)
	}
	o.SnapshotRestart, err = runSnapshotRestart()
	if err != nil {
		fatal(err)
	}

	buf, err := json.MarshalIndent(&o, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: suite %.0fms, %d solver calls, early-stop speedup %.1fx (%d checks)\n",
		*out, o.SuiteWallMS, o.TotalSolverCalls, cmpRes.Speedup, cmpRes.SolverChecks)
	last := o.SummarySweep[len(o.SummarySweep)-1]
	fmt.Printf("  summary sweep: %d-op trace walked %d edges summarized (vs %d plain), %.1fx wall speedup\n",
		last.TraceOps, last.SummarizedWalked, last.BaselineWalked, last.Speedup)
	if o.Oracle != nil {
		fmt.Printf("  %s\n", o.Oracle.Summary())
	}
	pf := o.Portfolio
	fmt.Printf("  portfolio: %d queries, wins icp/inc/scratch %d/%d/%d, %.1fms vs incremental-only %.1fms, %d divergences\n",
		pf.Queries, pf.WinsICP, pf.WinsIncremental, pf.WinsScratch, pf.PortfolioMS, pf.IncrementalMS, pf.Divergences)
	fmt.Printf("  batch: serial %.1fms -> batched %.1fms (%.1fx), %d divergences\n",
		pf.Batch.SerialMS, pf.Batch.BatchedMS, pf.Batch.Ratio, pf.Batch.Divergences)
	cc := o.Concurrency
	fmt.Printf("  concurrency: %d threads, %d racy edges, walked %d vs serialized %d (%.2fx)\n",
		cc.Threads, cc.RacyEdges, cc.ThreadedWalked, cc.SerialWalked, cc.WalkRatio)
	sw := o.ServiceWarm
	fmt.Printf("  service warm: cold %.1fms -> warm %.1fms (%.1fx), %d solver-cache + %d post-memo hits\n",
		sw.ColdMS, sw.WarmMS, sw.Speedup, sw.SolverCacheHits, sw.PostMemoHits)
	sr := o.SnapshotRestart
	fmt.Printf("  snapshot restart: cold first %.1fms -> restored first %.1fms (%.1fx), %d programs + %d summaries + %d verdicts restored (%dB)\n",
		sr.ColdFirstMS, sr.WarmFirstMS, sr.Speedup, sr.RestoredPrograms, sr.RestoredSummaries, sr.RestoredVerdicts, sr.SnapshotBytes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
