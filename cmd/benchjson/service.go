package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"pathslice/internal/service"
)

// serviceWarmRecord measures what slicerd's resident state buys: the
// same program analyzed twice through the real HTTP handler, cold then
// warm. The warm request must hit the program cache, the shared solver
// cache, and the checker's persistent abstract-post memo, and come
// back faster — cmd/benchdiff gates on exactly that (the comparison is
// within one artifact, so it is same-host by construction).
type serviceWarmRecord struct {
	// ColdMS is the server-side elapsed time of the first slice+check
	// round; WarmMS the best of three repeat rounds.
	ColdMS  float64 `json:"cold_ms"`
	WarmMS  float64 `json:"warm_ms"`
	Speedup float64 `json:"speedup"`
	// Reuse counters observed by the warm round.
	ProgramCacheHit bool  `json:"program_cache_hit"`
	SolverCacheHits int64 `json:"solver_cache_hits"`
	SummaryHits     int64 `json:"summary_hits"`
	PostMemoHits    int64 `json:"post_memo_hits"`
}

// serviceProgSrc is call-heavy (frame summaries replay) and needs real
// CEGAR work (the post memo fills), so both reuse layers show up.
const serviceProgSrc = `
int x;
int a;
void f() { skip; }
void g() { f(); f(); }
void main() {
  for (int i = 1; i <= 60; i = i + 1) { g(); }
  if (a >= 0) {
    if (x == 0) {
      error;
    }
  }
}
`

func runServiceWarm() (*serviceWarmRecord, error) {
	srv := service.New(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	round := func() (float64, *service.SliceResponse, *service.CheckResponse, error) {
		var sr service.SliceResponse
		if err := postJSON(ts.URL+"/v1/slice", service.SliceRequest{
			Source: serviceProgSrc, Long: true, Unroll: 30,
		}, &sr); err != nil {
			return 0, nil, nil, err
		}
		var cr service.CheckResponse
		if err := postJSON(ts.URL+"/v1/check", service.CheckRequest{
			Source: serviceProgSrc,
		}, &cr); err != nil {
			return 0, nil, nil, err
		}
		return sr.ElapsedMS + cr.ElapsedMS, &sr, &cr, nil
	}

	cold, _, _, err := round()
	if err != nil {
		return nil, err
	}
	rec := &serviceWarmRecord{ColdMS: cold}
	for i := 0; i < 3; i++ {
		ms, sr, cr, err := round()
		if err != nil {
			return nil, err
		}
		if rec.WarmMS == 0 || ms < rec.WarmMS {
			rec.WarmMS = ms
		}
		rec.ProgramCacheHit = sr.Reuse.ProgramCacheHit && cr.Reuse.ProgramCacheHit
		rec.SolverCacheHits = sr.Reuse.SolverCacheHits + cr.Reuse.SolverCacheHits
		rec.SummaryHits = sr.Reuse.SummaryHits
		rec.PostMemoHits = cr.Reuse.PostMemoHits
	}
	if rec.WarmMS > 0 {
		rec.Speedup = rec.ColdMS / rec.WarmMS
	}
	return rec, nil
}

func postJSON(url string, req, resp any) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, r.StatusCode)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}
