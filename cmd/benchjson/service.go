package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"pathslice/internal/service"
)

// serviceWarmRecord measures what slicerd's resident state buys: the
// same program analyzed twice through the real HTTP handler, cold then
// warm. The warm request must hit the program cache, the shared solver
// cache, and the checker's persistent abstract-post memo, and come
// back faster — cmd/benchdiff gates on exactly that (the comparison is
// within one artifact, so it is same-host by construction).
type serviceWarmRecord struct {
	// ColdMS is the server-side elapsed time of the first slice+check
	// round; WarmMS the best of three repeat rounds.
	ColdMS  float64 `json:"cold_ms"`
	WarmMS  float64 `json:"warm_ms"`
	Speedup float64 `json:"speedup"`
	// Reuse counters observed by the warm round.
	ProgramCacheHit bool  `json:"program_cache_hit"`
	SolverCacheHits int64 `json:"solver_cache_hits"`
	SummaryHits     int64 `json:"summary_hits"`
	PostMemoHits    int64 `json:"post_memo_hits"`
}

// serviceProgSrc is call-heavy (frame summaries replay) and needs real
// CEGAR work (the post memo fills), so both reuse layers show up.
const serviceProgSrc = `
int x;
int a;
void f() { skip; }
void g() { f(); f(); }
void main() {
  for (int i = 1; i <= 60; i = i + 1) { g(); }
  if (a >= 0) {
    if (x == 0) {
      error;
    }
  }
}
`

func runServiceWarm() (*serviceWarmRecord, error) {
	srv := service.New(service.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	round := func() (float64, *service.SliceResponse, *service.CheckResponse, error) {
		var sr service.SliceResponse
		if err := postJSON(ts.URL+"/v1/slice", service.SliceRequest{
			Source: serviceProgSrc, Long: true, Unroll: 30,
		}, &sr); err != nil {
			return 0, nil, nil, err
		}
		var cr service.CheckResponse
		if err := postJSON(ts.URL+"/v1/check", service.CheckRequest{
			Source: serviceProgSrc,
		}, &cr); err != nil {
			return 0, nil, nil, err
		}
		return sr.ElapsedMS + cr.ElapsedMS, &sr, &cr, nil
	}

	cold, _, _, err := round()
	if err != nil {
		return nil, err
	}
	rec := &serviceWarmRecord{ColdMS: cold}
	for i := 0; i < 3; i++ {
		ms, sr, cr, err := round()
		if err != nil {
			return nil, err
		}
		if rec.WarmMS == 0 || ms < rec.WarmMS {
			rec.WarmMS = ms
		}
		rec.ProgramCacheHit = sr.Reuse.ProgramCacheHit && cr.Reuse.ProgramCacheHit
		rec.SolverCacheHits = sr.Reuse.SolverCacheHits + cr.Reuse.SolverCacheHits
		rec.SummaryHits = sr.Reuse.SummaryHits
		rec.PostMemoHits = cr.Reuse.PostMemoHits
	}
	if rec.WarmMS > 0 {
		rec.Speedup = rec.ColdMS / rec.WarmMS
	}
	return rec, nil
}

// snapshotRestartRecord measures what a warm-state snapshot buys
// across a restart (docs/DEPLOYMENT.md): a warm server saves its
// state, a fresh server restores it, and the restored server's very
// first request is timed against a cold server's very first request.
// cmd/benchdiff gates on the restored request reusing every snapshot
// constituent and beating the cold one (same artifact, same host).
type snapshotRestartRecord struct {
	SnapshotBytes     int64   `json:"snapshot_bytes"`
	RestoredPrograms  int64   `json:"restored_programs"`
	RestoredSummaries int64   `json:"restored_summaries"`
	RestoredVerdicts  int64   `json:"restored_verdicts"`
	DroppedRecords    int64   `json:"dropped_records"`
	// ColdFirstMS/WarmFirstMS are server-side elapsed times of the
	// first slice request on a cold vs snapshot-restored server (best
	// of three full save/restore cycles).
	ColdFirstMS float64 `json:"cold_first_ms"`
	WarmFirstMS float64 `json:"warm_first_ms"`
	Speedup     float64 `json:"speedup"`
	// Reuse counters of the restored server's first request.
	ProgramCacheHit bool  `json:"program_cache_hit"`
	SummaryHits     int64 `json:"summary_hits"`
	SolverCacheHits int64 `json:"solver_cache_hits"`
}

// snapshotProgSrc's callee mutates a variable that is live at the
// error guard, so its frames are summarized — the snapshot carries
// programs, summaries, AND solver verdicts, and the restored first
// request replays all three.
const snapshotProgSrc = `
int x;
int a;
void bump() {
  x = x + 1;
}
void main() {
  x = 0;
  for (int i = 0; i < 40; i = i + 1) { bump(); }
  if (a >= 0) {
    if (x > 100) {
      error;
    }
  }
}
`

func runSnapshotRestart() (*snapshotRestartRecord, error) {
	dir, err := os.MkdirTemp("", "benchjson-snap")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "warm.snap")

	req := service.SliceRequest{Source: snapshotProgSrc, Long: true, Unroll: 30}
	first := func(cfg service.Config) (*service.SliceResponse, *service.Server, error) {
		srv := service.New(cfg)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var sr service.SliceResponse
		if err := postJSON(ts.URL+"/v1/slice", req, &sr); err != nil {
			srv.Close()
			return nil, nil, err
		}
		return &sr, srv, nil
	}

	rec := &snapshotRestartRecord{}
	for cycle := 0; cycle < 3; cycle++ {
		coldResp, warmSrv, err := first(service.Config{})
		if err != nil {
			return nil, err
		}
		// The cold server doubles as the snapshot source: one more
		// request replays the summaries it recorded, then it saves.
		ts := httptest.NewServer(warmSrv.Handler())
		var again service.SliceResponse
		if err := postJSON(ts.URL+"/v1/slice", req, &again); err != nil {
			ts.Close()
			warmSrv.Close()
			return nil, err
		}
		ts.Close()
		if err := warmSrv.SaveSnapshot(snap); err != nil {
			warmSrv.Close()
			return nil, err
		}
		warmSrv.Close()
		fi, err := os.Stat(snap)
		if err != nil {
			return nil, err
		}

		restResp, restSrv, err := first(service.Config{SnapshotPath: snap})
		if err != nil {
			return nil, err
		}
		st := restSrv.Stats().Snapshot
		restSrv.Close()
		if st == nil {
			return nil, fmt.Errorf("restored server reports no snapshot stats")
		}

		if rec.ColdFirstMS == 0 || coldResp.ElapsedMS < rec.ColdFirstMS {
			rec.ColdFirstMS = coldResp.ElapsedMS
		}
		if rec.WarmFirstMS == 0 || restResp.ElapsedMS < rec.WarmFirstMS {
			rec.WarmFirstMS = restResp.ElapsedMS
		}
		rec.SnapshotBytes = fi.Size()
		rec.RestoredPrograms = st.RestoredPrograms
		rec.RestoredSummaries = st.RestoredSummaries
		rec.RestoredVerdicts = st.RestoredVerdicts
		rec.DroppedRecords = st.DroppedRecords
		rec.ProgramCacheHit = restResp.Reuse.ProgramCacheHit
		rec.SummaryHits = restResp.Reuse.SummaryHits
		rec.SolverCacheHits = restResp.Reuse.SolverCacheHits
	}
	if rec.WarmFirstMS > 0 {
		rec.Speedup = rec.ColdFirstMS / rec.WarmFirstMS
	}
	return rec, nil
}

func postJSON(url string, req, resp any) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, r.StatusCode)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}
