// Command farm is the time-budgeted verification farm: one command
// that keeps hammering the solver pipeline for as long as you give it
// — the differential/metamorphic oracle campaign with the portfolio
// front-end on, both native fuzz targets, and the benchmark suite,
// with every fresh BENCH_PR10.json gated by benchdiff against the
// checked-in baseline. `make farm` runs it; `make check` includes a
// short burst (FARMTIME=60s).
//
// Usage:
//
//	farm [-time 60s] [-oracle-seeds 60] [-fuzztime 5s] [-workdir d]
//	     [-bench-min 90s] [-skip-selftest]
//
// Phases per iteration (each bounded by the remaining budget):
//
//  1. Oracle: a fresh campaign (seed = iteration number, so every
//     iteration explores new programs) with Portfolio on — any
//     Theorem-1 violation fails the farm.
//  2. Fuzz: FuzzParse and FuzzLinearize for -fuzztime each (the
//     threaded-syntax and PSTRC02 fuzzers stay on `make fuzz`).
//  3. Bench: when at least -bench-min budget remains, cmd/benchjson
//     writes a fresh BENCH_PR10.json into the workspace (next to a copy
//     of the checked-in artifacts) and cmd/benchdiff gates it — the
//     regression thresholds are the same ones `make bench-diff`
//     enforces on the committed artifacts.
//
// Before the loop, a planted-regression self-test proves the gate has
// teeth: the newest artifact is copied into a scratch directory with
// its early-unsat-stop speedup slashed and its batch ratio zeroed,
// and benchdiff MUST fail on it — if it passes, the farm refuses to
// run. The workspace never touches the checked-in artifacts.
//
// Exit codes: 0 all phases green for the whole budget, 1 any failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"pathslice/internal/oracle"
)

func main() {
	budget := flag.Duration("time", 60*time.Second, "total wall-clock budget for the farm loop")
	oracleSeeds := flag.Int("oracle-seeds", 60, "seeds per oracle campaign iteration")
	fuzztime := flag.Duration("fuzztime", 5*time.Second, "per-target native fuzzing time per iteration")
	workdir := flag.String("workdir", "", "farm workspace for bench artifacts (default: a temp dir)")
	benchMin := flag.Duration("bench-min", 90*time.Second, "minimum remaining budget to start a bench phase")
	skipSelftest := flag.Bool("skip-selftest", false, "skip the planted-regression benchdiff self-test")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: farm [flags]")
		flag.Usage()
		os.Exit(2)
	}

	wd := *workdir
	if wd == "" {
		var err error
		wd, err = os.MkdirTemp("", "farm-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(wd)
	} else if err := os.MkdirAll(wd, 0o755); err != nil {
		fatal(err)
	}

	if !*skipSelftest {
		if err := selftest(wd); err != nil {
			fatal(fmt.Errorf("planted-regression self-test: %w", err))
		}
		fmt.Println("farm: self-test ok — benchdiff fails on a planted regression")
	}

	deadline := time.Now().Add(*budget)
	iter := 0
	benched := false
	for {
		remaining := time.Until(deadline)
		if iter > 0 && remaining <= 0 {
			break
		}
		iter++
		fmt.Printf("farm: iteration %d (%.0fs remaining)\n", iter, remaining.Seconds())

		if err := oraclePhase(iter, *oracleSeeds, remaining); err != nil {
			fatal(err)
		}
		if err := fuzzPhase("./internal/lang/parser/", "FuzzParse$", *fuzztime); err != nil {
			fatal(err)
		}
		if err := fuzzPhase("./internal/smt/", "FuzzLinearize", *fuzztime); err != nil {
			fatal(err)
		}
		if time.Until(deadline) >= *benchMin {
			if err := benchPhase(wd); err != nil {
				fatal(err)
			}
			benched = true
		}
	}
	if !benched {
		fmt.Printf("farm: budget too short for a bench phase (needs %-.0fs); bench gating covered by the self-test\n",
			benchMin.Seconds())
	}
	fmt.Printf("farm: ok — %d iteration(s) green\n", iter)
}

// oraclePhase runs one campaign with the portfolio front-end on. The
// seed advances with the iteration so a long farm run explores fresh
// programs instead of re-verifying the first campaign forever.
func oraclePhase(iter, seeds int, remaining time.Duration) error {
	ceiling := 30 * time.Second
	if remaining > 0 && remaining < ceiling {
		ceiling = remaining
	}
	stats := oracle.Run(oracle.Config{
		Seeds:     seeds,
		Budget:    ceiling,
		Seed:      int64(iter),
		Portfolio: true,
		CorpusDir: "testdata/oracle",
	})
	if len(stats.Violations) > 0 {
		for _, v := range stats.Violations {
			fmt.Fprintf(os.Stderr, "farm: violation: %s\n", v)
		}
		return fmt.Errorf("oracle campaign (iteration %d): %d violations", iter, len(stats.Violations))
	}
	fmt.Printf("farm: %s\n", stats.Summary())
	return nil
}

// fuzzPhase runs one native fuzz target through the go tool, exactly
// like `make fuzz`.
func fuzzPhase(pkg, target string, d time.Duration) error {
	cmd := exec.Command("go", "test", pkg, "-run", "^$",
		"-fuzz", target, "-fuzztime", d.String())
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("fuzz %s: %w", target, err)
	}
	return nil
}

// benchPhase copies the checked-in artifacts into the workspace, runs
// benchjson there (oracle omitted — the farm runs its own campaigns),
// and gates the fresh artifact against the newest committed baseline
// with benchdiff's default thresholds.
func benchPhase(wd string) error {
	if err := copyArtifacts(".", wd); err != nil {
		return err
	}
	run := func(args ...string) error {
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		return cmd.Run()
	}
	if err := run("run", "./cmd/benchjson",
		"-out", filepath.Join(wd, "BENCH_PR10.json"), "-oracle-seeds", "0", "-sweep-reps", "3"); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	if err := run("run", "./cmd/benchdiff", "-dir", wd); err != nil {
		return fmt.Errorf("benchdiff: fresh artifact regressed against the baseline: %w", err)
	}
	return nil
}

// selftest proves benchdiff would catch a perf regression: it doctors
// a copy of the newest artifact — early-unsat-stop speedup slashed to
// a third (the 8.0x -> 6.6x slide class, exaggerated) and the batch
// advantage zeroed — and requires benchdiff to fail on the scratch
// directory.
func selftest(wd string) error {
	dir := filepath.Join(wd, "selftest")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := copyArtifacts(".", dir); err != nil {
		return err
	}
	newest, err := newestArtifact(dir)
	if err != nil {
		return err
	}
	if err := plantRegression(newest); err != nil {
		return err
	}
	cmd := exec.Command("go", "run", "./cmd/benchdiff", "-dir", dir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		os.Stdout.Write(out)
		return fmt.Errorf("benchdiff PASSED on a planted regression in %s — the gate is toothless", newest)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		return fmt.Errorf("benchdiff did not run: %w", err)
	}
	return nil
}

// plantRegression rewrites one artifact in place: speedup to a third
// of its recorded value (with incremental_ms inflated to match, so the
// artifact stays self-consistent) and the batched-solving ratio to
// 1.0 (batching that buys nothing).
func plantRegression(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var a map[string]any
	if err := json.Unmarshal(buf, &a); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if es, ok := a["early_unsat_stop"].(map[string]any); ok {
		if sp, ok := es["speedup"].(float64); ok {
			es["speedup"] = sp / 3
		}
		if inc, ok := es["incremental_ms"].(float64); ok {
			es["incremental_ms"] = inc * 3
		}
	}
	if pf, ok := a["portfolio"].(map[string]any); ok {
		if b, ok := pf["batch"].(map[string]any); ok {
			b["ratio"] = 1.0
			if s, ok := b["serial_ms"].(float64); ok {
				b["batched_ms"] = s
			}
		}
	}
	doctored, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(doctored, '\n'), 0o644)
}

// copyArtifacts copies every BENCH_PR*.json from src into dst.
func copyArtifacts(src, dst string) error {
	paths, err := filepath.Glob(filepath.Join(src, "BENCH_PR*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_PR*.json artifacts in %s", src)
	}
	for _, p := range paths {
		buf, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(p)), buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// newestArtifact returns the BENCH_PR*.json with the highest PR number
// in dir (lexicographic glob order is wrong once PR numbers reach two
// digits, so compare numerically via the benchdiff convention).
func newestArtifact(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_PR*.json"))
	if err != nil || len(paths) == 0 {
		return "", fmt.Errorf("no artifacts in %s", dir)
	}
	best, bestN := "", -1
	for _, p := range paths {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(p), "BENCH_PR%d.json", &n); err != nil {
			continue
		}
		if n > bestN {
			best, bestN = p, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no numbered artifacts in %s", dir)
	}
	return best, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "farm:", err)
	os.Exit(1)
}
