// Command benchgen emits the synthetic benchmark programs that stand in
// for the paper's C subjects (Table 1 plus muh and gcc). Use it to
// inspect the workloads or to feed blastlite/pathslice by hand.
//
// With -callheavy it instead emits the gcc-class summary-sweep subject
// (bench.CallHeavySource): deep call chains invoked repeatedly from a
// loop, the trace shape on which the frame summaries of internal/summ
// pay off. -chains, -depth, and -bodyops shape it; feed the output to
// `pathslice -long -summaries -trace-file t.pstrc -stream` to
// reproduce the BENCH_PR6.json regime by hand.
//
// With -threads it emits the concurrency twin pair
// (bench.ConcTwinSource): the same worker workload once with
// spawn/join and once serialized, the subject of the BENCH_PR10.json
// `concurrency` section whose walked-edge ratio `make bench-diff`
// gates at 1.5x (docs/CONCURRENCY.md). -workers and -bodyops shape
// it; record an interleaving with `minirun -conc -conc-trace-out` and
// slice it with `pathslice -conc-trace`.
//
// Usage:
//
//	benchgen [-scale f] [-list] [-o dir] [name]
//	benchgen -callheavy [-chains n] [-depth n] [-bodyops n] [-o dir]
//	benchgen -threads [-workers n] [-bodyops n] [-o dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pathslice/internal/bench"
	"pathslice/internal/synth"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	list := flag.Bool("list", false, "list available benchmark names")
	outDir := flag.String("o", "", "write <name>.mc files into this directory instead of stdout")
	callHeavy := flag.Bool("callheavy", false, "emit the gcc-class call-heavy summary-sweep subject")
	chains := flag.Int("chains", bench.DefaultGccConfig().Chains, "call-heavy: distinct call chains per loop iteration")
	depth := flag.Int("depth", bench.DefaultGccConfig().Depth, "call-heavy: nested functions per chain")
	bodyOps := flag.Int("bodyops", bench.DefaultGccConfig().BodyOps, "call-heavy/threads: straight-line ops per body")
	threads := flag.Bool("threads", false, "emit the concurrency twin pair (threaded + serialized)")
	workers := flag.Int("workers", bench.DefaultConcTwinConfig().Workers, "threads: worker procedures per twin")
	flag.Parse()

	if *threads {
		cfg := bench.ConcTwinConfig{Workers: *workers, BodyOps: *bodyOps}
		twins := []struct {
			name     string
			threaded bool
		}{{"threaded", true}, {"serialized", false}}
		for _, tw := range twins {
			src := bench.ConcTwinSource(cfg, tw.threaded)
			if *outDir == "" {
				fmt.Printf("// ===== %s =====\n%s", tw.name, src)
				continue
			}
			path := filepath.Join(*outDir, tw.name+".mc")
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "benchgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		return
	}

	if *callHeavy {
		src := bench.CallHeavySource(bench.CallHeavyConfig{Chains: *chains, Depth: *depth, BodyOps: *bodyOps})
		if *outDir == "" {
			fmt.Print(src)
			return
		}
		path := filepath.Join(*outDir, "callheavy.mc")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
		return
	}

	profiles := synth.PaperProfiles(*scale)
	profiles = append(profiles, synth.MuhProfile(*scale), synth.GccProfile(*scale))

	if *list {
		for _, p := range profiles {
			fmt.Printf("%-8s %-22s paper: %s LOC, %d procs, checks %s\n",
				p.Name, p.Description, p.PaperLOC, p.PaperProcedures, p.PaperChecks)
		}
		return
	}

	selected := profiles
	if flag.NArg() == 1 {
		selected = nil
		for _, p := range profiles {
			if p.Name == flag.Arg(0) {
				selected = []synth.Profile{p}
			}
		}
		if selected == nil {
			fmt.Fprintf(os.Stderr, "benchgen: unknown benchmark %q (try -list)\n", flag.Arg(0))
			os.Exit(2)
		}
	}

	for _, p := range selected {
		src := synth.Generate(p)
		if *outDir == "" {
			if len(selected) > 1 {
				fmt.Printf("// ===== %s =====\n", p.Name)
			}
			fmt.Print(src)
			continue
		}
		path := filepath.Join(*outDir, p.Name+".mc")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
