// Command benchgen emits the synthetic benchmark programs that stand in
// for the paper's C subjects (Table 1 plus muh and gcc). Use it to
// inspect the workloads or to feed blastlite/pathslice by hand.
//
// Usage:
//
//	benchgen [-scale f] [-list] [-o dir] [name]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pathslice/internal/synth"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	list := flag.Bool("list", false, "list available benchmark names")
	outDir := flag.String("o", "", "write <name>.mc files into this directory instead of stdout")
	flag.Parse()

	profiles := synth.PaperProfiles(*scale)
	profiles = append(profiles, synth.MuhProfile(*scale), synth.GccProfile(*scale))

	if *list {
		for _, p := range profiles {
			fmt.Printf("%-8s %-22s paper: %s LOC, %d procs, checks %s\n",
				p.Name, p.Description, p.PaperLOC, p.PaperProcedures, p.PaperChecks)
		}
		return
	}

	selected := profiles
	if flag.NArg() == 1 {
		selected = nil
		for _, p := range profiles {
			if p.Name == flag.Arg(0) {
				selected = []synth.Profile{p}
			}
		}
		if selected == nil {
			fmt.Fprintf(os.Stderr, "benchgen: unknown benchmark %q (try -list)\n", flag.Arg(0))
			os.Exit(2)
		}
	}

	for _, p := range selected {
		src := synth.Generate(p)
		if *outDir == "" {
			if len(selected) > 1 {
				fmt.Printf("// ===== %s =====\n", p.Name)
			}
			fmt.Print(src)
			continue
		}
		path := filepath.Join(*outDir, p.Name+".mc")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
