// Command servesmoke is the end-to-end smoke harness for slicerd
// (`make serve-smoke`, part of `make check`). It builds nothing and
// mocks nothing: it launches the real daemon with a tiny admission
// limit and a 100% solver-stall fault rate, bursts more concurrent
// requests than the limit admits, and asserts the load-shedding
// contract (docs/ROBUSTNESS.md):
//
//   - shed requests get the typed 503 body — error "overloaded",
//     verdict "undecided", exit code 4, degraded — never a wrong
//     verdict and never a hung connection;
//   - admitted requests still answer 200 with a sound verdict;
//   - the admin port's /metrics reports the slicerd_* series, with
//     slicerd_load_shed_total matching what the client saw.
//
// Usage: servesmoke [-slicerd path] (default "go run ./cmd/slicerd").
// Exit code 0 on pass, 1 on any violated assertion.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const smokeSrc = `
int a;
void main() {
  int x = 3;
  if (a == 0) {
    error;
  }
}
`

const (
	maxInflight = 2
	burst       = 12
)

func main() {
	os.Exit(run())
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "servesmoke: FAIL: "+format+"\n", args...)
	return 1
}

func run() int {
	bin := flag.String("slicerd", "", "slicerd binary to launch (default: go run ./cmd/slicerd)")
	flag.Parse()

	args := []string{
		"-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
		"-max-inflight", fmt.Sprint(maxInflight),
		"-default-deadline", "5s",
		"-fault-stall", "1.0", "-fault-stall-for", "300ms",
	}
	var cmd *exec.Cmd
	if *bin != "" {
		cmd = exec.Command(*bin, args...)
	} else {
		cmd = exec.Command("go", append([]string{"run", "./cmd/slicerd"}, args...)...)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fail("%v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fail("starting slicerd: %v", err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// The daemon prints its bound addresses on stdout.
	apiAddr, adminAddr := "", ""
	sc := bufio.NewScanner(stdout)
	for apiAddr == "" || adminAddr == "" {
		if !sc.Scan() {
			break
		}
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "slicerd: api http://"); ok {
			apiAddr = rest
		}
		if rest, ok := strings.CutPrefix(line, "slicerd: admin http://"); ok {
			adminAddr = rest
		}
	}
	if apiAddr == "" || adminAddr == "" {
		return fail("daemon never printed its addresses (api=%q admin=%q)", apiAddr, adminAddr)
	}
	go io.Copy(io.Discard, stdout)

	if err := waitHealthy("http://" + apiAddr + "/v1/healthz"); err != nil {
		return fail("%v", err)
	}
	fmt.Printf("servesmoke: slicerd up (api %s, admin %s)\n", apiAddr, adminAddr)

	// Burst past the admission limit. Every solver query stalls 300ms,
	// so admitted sessions hold their slot long enough that most of the
	// burst must be shed.
	body, _ := json.Marshal(map[string]any{"source": smokeSrc})
	var ok200, shed503, other atomic.Int64
	var firstBad atomic.Value
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post("http://"+apiAddr+"/v1/slice", "application/json", bytes.NewReader(body))
			if err != nil {
				other.Add(1)
				firstBad.CompareAndSwap(nil, fmt.Sprintf("request error: %v", err))
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				var sr struct {
					Verdict  string `json:"verdict"`
					ExitCode int    `json:"exit_code"`
				}
				if json.Unmarshal(raw, &sr) != nil || (sr.Verdict != "bug" && sr.Verdict != "undecided") {
					other.Add(1)
					firstBad.CompareAndSwap(nil, "200 with unsound body: "+string(raw))
					return
				}
				ok200.Add(1)
			case http.StatusServiceUnavailable:
				var er struct {
					Error    string `json:"error"`
					Degraded bool   `json:"degraded"`
					Verdict  string `json:"verdict"`
					ExitCode int    `json:"exit_code"`
				}
				if json.Unmarshal(raw, &er) != nil || er.Error != "overloaded" ||
					!er.Degraded || er.Verdict != "undecided" || er.ExitCode != 4 {
					other.Add(1)
					firstBad.CompareAndSwap(nil, "503 without the typed degraded body: "+string(raw))
					return
				}
				shed503.Add(1)
			default:
				other.Add(1)
				firstBad.CompareAndSwap(nil, fmt.Sprintf("unexpected status %d: %s", resp.StatusCode, raw))
			}
		}()
	}
	wg.Wait()

	if msg := firstBad.Load(); msg != nil {
		return fail("%s", msg)
	}
	if other.Load() != 0 {
		return fail("%d requests neither served nor shed", other.Load())
	}
	if ok200.Load() == 0 {
		return fail("burst of %d produced no 200s (admission must still admit)", burst)
	}
	if shed503.Load() == 0 {
		return fail("burst of %d over limit %d produced no shed 503s", burst, maxInflight)
	}
	fmt.Printf("servesmoke: burst %d → %d served, %d shed (limit %d)\n",
		burst, ok200.Load(), shed503.Load(), maxInflight)

	// The admin surface must report the slicerd_* series and agree with
	// what the client observed.
	metrics, err := fetch("http://" + adminAddr + "/metrics")
	if err != nil {
		return fail("admin metrics: %v", err)
	}
	for _, name := range []string{
		"slicerd_requests_total", "slicerd_load_shed_total",
		"slicerd_program_cache_misses_total", "slicerd_inflight",
		"slicerd_request_ns",
	} {
		if !strings.Contains(metrics, name) {
			return fail("/metrics is missing %s", name)
		}
	}
	var gotShed int64
	for _, line := range strings.Split(metrics, "\n") {
		if n, err := fmt.Sscanf(line, "slicerd_load_shed_total %d", &gotShed); n == 1 && err == nil {
			break
		}
	}
	if gotShed != shed503.Load() {
		return fail("slicerd_load_shed_total = %d, client saw %d", gotShed, shed503.Load())
	}
	fmt.Println("servesmoke: /metrics reports the slicerd_* series, shed count matches")
	fmt.Println("servesmoke: PASS")
	return 0
}

func waitHealthy(url string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon never became healthy at %s", url)
}

func fetch(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}
