// Command benchdiff gates performance regressions between the two
// newest BENCH_PR*.json artifacts (cmd/benchjson). It exits nonzero
// when any tracked deterministic metric regresses by more than 20%,
// and — independently of whether a predecessor exists — when the new
// artifact's gcc-class summary sweep stops being sublinear: the
// walked-edge count of the summarized slicer must grow by less than
// 1.8x per trace-length doubling, and the streamed reader's peak
// resident frames must stay at the bounded window.
//
// Deterministic counters (solver calls, early-stop checks, oracle
// pairs and violations, walked edges) are compared unconditionally —
// they cannot drift with machine load. Wall-time metrics are compared
// only when both artifacts carry the same host fingerprint AND a CPU
// calibration (cmd/benchjson's calibration_ms), which normalizes for
// VM instances of the same class running at different effective clock
// speeds; older artifacts missing either are skipped with a note
// rather than producing noise. It also enforces the fresh artifact's
// own slicerd warm-reuse invariants (service_warm: the warm round must
// hit the program cache, shared solver cache, and post memo, and beat
// the cold round — same-host by construction), its snapshot-restart
// invariants (snapshot_restart: a restored server's first request must
// reuse every snapshot constituent, drop nothing, and beat a cold
// first request), and its portfolio invariants (portfolio: zero
// verdict divergences, batched solving at least 1.5x faster than
// serial, the racing front-end no slower than incremental-only beyond
// noise), and its concurrency-twin invariants (concurrency: the
// cross-thread walk visits at most 1.5x the serialized twin's edges,
// on a trace with >= 2 threads and racy edges — docs/CONCURRENCY.md).
// The early-unsat-stop speedup ratio carries its own tighter
// gate (-max-speedup-drop): a slide from 8.0x to 6.6x stays inside the
// generic 20% window but still fails the build.
//
// Usage:
//
//	benchdiff [-dir .] [-old f] [-new f] [-max-regress 0.20] [-max-growth 1.8]
//	          [-max-speedup-drop 0.15] [-min-batch-ratio 1.5] [-portfolio-noise 1.25]
//	          [-max-walk-ratio 1.5]
//
// `make bench-diff` runs it over the checked-in artifacts; `make
// check` includes it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// artifact is the subset of cmd/benchjson's output that benchdiff
// tracks. Fields absent from older artifacts unmarshal to zero values
// and are skipped.
type artifact struct {
	Host             string  `json:"host"`
	CalibrationMS    float64 `json:"calibration_ms"`
	SuiteWallMS      float64 `json:"suite_wall_ms"`
	TotalSolverCalls int64   `json:"total_solver_calls"`
	EarlyUnsatStop   *struct {
		SolverChecks  int     `json:"solver_checks"`
		IncrementalMS float64 `json:"incremental_ms"`
		ScratchMS     float64 `json:"scratch_ms"`
		Speedup       float64 `json:"speedup"`
	} `json:"early_unsat_stop"`
	SummarySweep []struct {
		TraceOps         int     `json:"trace_ops"`
		SliceEdges       int     `json:"slice_edges"`
		BaselineWalked   int     `json:"baseline_walked"`
		SummarizedWalked int     `json:"summarized_walked"`
		SummarizedMS     float64 `json:"summarized_ms"`
		StreamPeakFrames int     `json:"stream_peak_frames"`
	} `json:"summary_sweep"`
	Oracle *struct {
		Pairs      int `json:"pairs"`
		Violations int `json:"violations"`
	} `json:"oracle"`
	ServiceWarm *struct {
		ColdMS          float64 `json:"cold_ms"`
		WarmMS          float64 `json:"warm_ms"`
		ProgramCacheHit bool    `json:"program_cache_hit"`
		SolverCacheHits int64   `json:"solver_cache_hits"`
		PostMemoHits    int64   `json:"post_memo_hits"`
	} `json:"service_warm"`
	SnapshotRestart *struct {
		ColdFirstMS       float64 `json:"cold_first_ms"`
		WarmFirstMS       float64 `json:"warm_first_ms"`
		RestoredPrograms  int64   `json:"restored_programs"`
		RestoredSummaries int64   `json:"restored_summaries"`
		RestoredVerdicts  int64   `json:"restored_verdicts"`
		DroppedRecords    int64   `json:"dropped_records"`
		ProgramCacheHit   bool    `json:"program_cache_hit"`
		SummaryHits       int64   `json:"summary_hits"`
		SolverCacheHits   int64   `json:"solver_cache_hits"`
	} `json:"snapshot_restart"`
	Portfolio *struct {
		Queries         int     `json:"queries"`
		Decided         int     `json:"decided"`
		Divergences     int     `json:"divergences"`
		WinsICP         int     `json:"wins_icp"`
		WinsIncremental int     `json:"wins_incremental"`
		WinsScratch     int     `json:"wins_scratch"`
		PortfolioMS     float64 `json:"portfolio_ms"`
		IncrementalMS   float64 `json:"incremental_ms"`
		Batch           *struct {
			Queries     int     `json:"queries"`
			Divergences int     `json:"divergences"`
			SerialMS    float64 `json:"serial_ms"`
			BatchedMS   float64 `json:"batched_ms"`
			Ratio       float64 `json:"ratio"`
		} `json:"batch"`
	} `json:"portfolio"`
	Concurrency *struct {
		ThreadedEvents int     `json:"threaded_events"`
		SerialEvents   int     `json:"serial_events"`
		ThreadedWalked int     `json:"threaded_walked"`
		SerialWalked   int     `json:"serial_walked"`
		WalkRatio      float64 `json:"walk_ratio"`
		Threads        int     `json:"threads"`
		RacyEdges      int     `json:"racy_edges"`
	} `json:"concurrency"`
}

// streamWindowFrames mirrors the PathReader block cache bound
// (cfa: 4 blocks x 1024 edges).
const streamWindowFrames = 4096

var failures int

func failf(format string, args ...any) {
	fmt.Printf("FAIL: "+format+"\n", args...)
	failures++
}

func main() {
	dir := flag.String("dir", ".", "directory to scan for BENCH_PR*.json")
	oldPath := flag.String("old", "", "baseline artifact (default: second-newest BENCH_PR*.json)")
	newPath := flag.String("new", "", "fresh artifact (default: newest BENCH_PR*.json)")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed relative regression per tracked metric")
	maxGrowth := flag.Float64("max-growth", 1.8, "allowed summarized walked-edge growth per trace doubling")
	maxSpeedupDrop := flag.Float64("max-speedup-drop", 0.15, "allowed relative drop of the early-unsat-stop speedup ratio")
	minBatchRatio := flag.Float64("min-batch-ratio", 1.5, "required batched-vs-serial wall advantage in the fresh artifact")
	portfolioNoise := flag.Float64("portfolio-noise", 1.25, "allowed portfolio-vs-incremental wall ratio in the fresh artifact")
	maxWalkRatio := flag.Float64("max-walk-ratio", 1.5, "allowed threaded-vs-serialized walked-edge ratio in the fresh artifact")
	flag.Parse()

	if *newPath == "" || *oldPath == "" {
		found := findArtifacts(*dir)
		if *newPath == "" {
			if len(found) == 0 {
				fatal(fmt.Errorf("no BENCH_PR*.json artifacts in %s", *dir))
			}
			*newPath = found[len(found)-1]
		}
		if *oldPath == "" && len(found) > 1 {
			*oldPath = found[len(found)-2]
		}
	}

	fresh := load(*newPath)
	checkSublinear(*newPath, fresh, *maxGrowth)
	checkServiceWarm(*newPath, fresh)
	checkSnapshotRestart(*newPath, fresh)
	checkPortfolio(*newPath, fresh, *minBatchRatio, *portfolioNoise)
	checkConcurrency(*newPath, fresh, *maxWalkRatio)

	if *oldPath == "" {
		fmt.Printf("note: no predecessor artifact, skipping regression comparison\n")
	} else {
		base := load(*oldPath)
		fmt.Printf("comparing %s (baseline) -> %s\n", *oldPath, *newPath)
		compare(base, fresh, *maxRegress, *maxSpeedupDrop)
	}

	if failures > 0 {
		fmt.Printf("benchdiff: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

// findArtifacts returns the BENCH_PR<n>.json files in dir sorted by n.
func findArtifacts(dir string) []string {
	re := regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatal(err)
	}
	type numbered struct {
		n    int
		path string
	}
	var found []numbered
	for _, e := range entries {
		m := re.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		found = append(found, numbered{n, filepath.Join(dir, e.Name())})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	paths := make([]string, len(found))
	for i, f := range found {
		paths[i] = f.path
	}
	return paths
}

func load(path string) *artifact {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var a artifact
	if err := json.Unmarshal(buf, &a); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return &a
}

// checkSublinear enforces the fresh artifact's own invariants: the
// summary sweep exists, its points double the trace length, the
// summarized walked-edge count grows sublinearly per doubling, and
// streaming never held more than the bounded window resident.
func checkSublinear(path string, a *artifact, maxGrowth float64) {
	if len(a.SummarySweep) < 3 {
		failf("%s: summary_sweep has %d points, want >= 3 (one per trace doubling)", path, len(a.SummarySweep))
		return
	}
	for i, r := range a.SummarySweep {
		if r.StreamPeakFrames > streamWindowFrames {
			failf("%s: sweep point %d held %d frames resident, window is %d",
				path, i, r.StreamPeakFrames, streamWindowFrames)
		}
		if i == 0 {
			continue
		}
		prev := a.SummarySweep[i-1]
		opsRatio := float64(r.TraceOps) / float64(prev.TraceOps)
		if opsRatio < 1.7 || opsRatio > 2.3 {
			failf("%s: sweep points %d->%d scale trace ops by %.2fx, want a doubling", path, i-1, i, opsRatio)
			continue
		}
		growth := float64(r.SummarizedWalked) / float64(prev.SummarizedWalked)
		baseGrowth := float64(r.BaselineWalked) / float64(prev.BaselineWalked)
		fmt.Printf("sweep %6d -> %6d ops: summarized walked %5d -> %5d (%.2fx per doubling, plain %.2fx)\n",
			prev.TraceOps, r.TraceOps, prev.SummarizedWalked, r.SummarizedWalked, growth, baseGrowth)
		if growth >= maxGrowth {
			failf("%s: summarized walked edges grew %.2fx per doubling (>= %.2f) — summaries no longer sublinear",
				path, growth, maxGrowth)
		}
	}
	if o := a.Oracle; o != nil && o.Violations != 0 {
		failf("%s: artifact recorded %d oracle violations", path, o.Violations)
	}
}

// checkServiceWarm enforces the fresh artifact's slicerd reuse
// invariants. Cold and warm rounds come from one benchjson run on one
// machine, so the wall-time comparison needs no host gating: a warm
// request that reuses no resident state, or is no faster than the cold
// one, means the resident daemon stopped paying for itself.
func checkServiceWarm(path string, a *artifact) {
	sw := a.ServiceWarm
	if sw == nil {
		fmt.Printf("note: %s has no service_warm section, skipping\n", path)
		return
	}
	if !sw.ProgramCacheHit {
		failf("%s: warm service request missed the program cache", path)
	}
	if sw.SolverCacheHits == 0 {
		failf("%s: warm service request had no shared solver-cache hits", path)
	}
	if sw.PostMemoHits == 0 {
		failf("%s: warm service check had no abstract-post memo hits", path)
	}
	if sw.WarmMS >= sw.ColdMS {
		failf("%s: warm service round (%.2fms) not faster than cold (%.2fms)", path, sw.WarmMS, sw.ColdMS)
	} else {
		fmt.Printf("service warm: cold %.1fms -> warm %.1fms (%.1fx), solver-cache %d, post-memo %d\n",
			sw.ColdMS, sw.WarmMS, sw.ColdMS/sw.WarmMS, sw.SolverCacheHits, sw.PostMemoHits)
	}
}

// checkSnapshotRestart enforces the fresh artifact's cross-restart
// invariants: a clean snapshot restores every constituent (programs,
// frame summaries, solver verdicts) without dropping records, and the
// restored server's first request reuses all of it and beats a cold
// server's first request — otherwise warm-state snapshots stopped
// paying for themselves.
func checkSnapshotRestart(path string, a *artifact) {
	sr := a.SnapshotRestart
	if sr == nil {
		fmt.Printf("note: %s has no snapshot_restart section, skipping\n", path)
		return
	}
	if sr.RestoredPrograms == 0 || sr.RestoredSummaries == 0 || sr.RestoredVerdicts == 0 {
		failf("%s: snapshot restore incomplete (%d programs, %d summaries, %d verdicts)",
			path, sr.RestoredPrograms, sr.RestoredSummaries, sr.RestoredVerdicts)
	}
	if sr.DroppedRecords != 0 {
		failf("%s: clean snapshot dropped %d records on restore", path, sr.DroppedRecords)
	}
	if !sr.ProgramCacheHit {
		failf("%s: restored server's first request missed the program cache", path)
	}
	if sr.SummaryHits == 0 {
		failf("%s: restored server's first request replayed no restored summaries", path)
	}
	if sr.SolverCacheHits == 0 {
		failf("%s: restored server's first request hit no restored solver verdicts", path)
	}
	if sr.WarmFirstMS >= sr.ColdFirstMS {
		failf("%s: restored first request (%.2fms) not faster than cold (%.2fms)",
			path, sr.WarmFirstMS, sr.ColdFirstMS)
	} else {
		fmt.Printf("snapshot restart: cold first %.1fms -> restored first %.1fms (%.1fx), %d/%d/%d restored\n",
			sr.ColdFirstMS, sr.WarmFirstMS, sr.ColdFirstMS/sr.WarmFirstMS,
			sr.RestoredPrograms, sr.RestoredSummaries, sr.RestoredVerdicts)
	}
}

// checkPortfolio enforces the fresh artifact's own portfolio/batch
// invariants (the cold/warm pattern again: both sides of each
// comparison come from one benchjson run on one machine, so no host
// gating is needed). Any verdict divergence is a soundness failure;
// a batch ratio under minBatchRatio means prefix sharing stopped
// paying; a portfolio slower than the incremental engine alone beyond
// the noise margin means the racing front-end costs more than it buys.
func checkPortfolio(path string, a *artifact, minBatchRatio, noise float64) {
	p := a.Portfolio
	if p == nil {
		fmt.Printf("note: %s has no portfolio section, skipping\n", path)
		return
	}
	if p.Divergences != 0 {
		failf("%s: portfolio diverged from the stateless reference on %d/%d queries", path, p.Divergences, p.Decided)
	}
	if p.Decided == 0 {
		failf("%s: portfolio corpus decided nothing — the comparison is vacuous", path)
	}
	if p.PortfolioMS > p.IncrementalMS*noise {
		failf("%s: portfolio wall %.2fms vs incremental-only %.2fms — beyond the %.2fx noise margin",
			path, p.PortfolioMS, p.IncrementalMS, noise)
	} else {
		fmt.Printf("portfolio: %d queries (icp/inc/scratch wins %d/%d/%d), %.1fms vs incremental-only %.1fms\n",
			p.Queries, p.WinsICP, p.WinsIncremental, p.WinsScratch, p.PortfolioMS, p.IncrementalMS)
	}
	b := p.Batch
	if b == nil {
		failf("%s: portfolio section has no batch comparison", path)
		return
	}
	if b.Divergences != 0 {
		failf("%s: batched route diverged from serial on %d/%d queries", path, b.Divergences, b.Queries)
	}
	if b.Ratio < minBatchRatio {
		failf("%s: batched route only %.2fx faster than serial (< %.2fx) — prefix sharing stopped paying",
			path, b.Ratio, minBatchRatio)
	} else {
		fmt.Printf("batch: serial %.1fms -> batched %.1fms (%.2fx over %d queries)\n",
			b.SerialMS, b.BatchedMS, b.Ratio, b.Queries)
	}
}

// checkConcurrency enforces the fresh artifact's concurrency-twin
// invariants (docs/CONCURRENCY.md): the recorded interleaving is
// genuinely concurrent (>= 2 threads, racy edges present), and the
// cross-thread walk visits at most maxWalkRatio times the edges of
// the serialized twin's walk — above that, slicing over racy edges
// stopped being a bounded-overhead extension of the sequential walk.
func checkConcurrency(path string, a *artifact, maxWalkRatio float64) {
	c := a.Concurrency
	if c == nil {
		fmt.Printf("note: %s has no concurrency section, skipping\n", path)
		return
	}
	if c.Threads < 2 {
		failf("%s: concurrency twin ran %d threads — the comparison is vacuous", path, c.Threads)
	}
	if c.RacyEdges == 0 {
		failf("%s: concurrency twin produced no racy edges — the twin is not concurrent", path)
	}
	if c.SerialWalked == 0 || c.ThreadedWalked == 0 {
		failf("%s: degenerate concurrency walk counts (threaded %d, serial %d)",
			path, c.ThreadedWalked, c.SerialWalked)
		return
	}
	if c.WalkRatio > maxWalkRatio {
		failf("%s: cross-thread slicing walked %.2fx the serialized twin's edges (%d vs %d, allowed %.2fx)",
			path, c.WalkRatio, c.ThreadedWalked, c.SerialWalked, maxWalkRatio)
	} else {
		fmt.Printf("concurrency: %d threads, %d racy edges, walked %d vs serialized %d (%.2fx <= %.2fx)\n",
			c.Threads, c.RacyEdges, c.ThreadedWalked, c.SerialWalked, c.WalkRatio, maxWalkRatio)
	}
}

// compare gates the fresh artifact's tracked metrics against the
// baseline's. direction +1 means higher is worse, -1 lower is worse.
func compare(base, fresh *artifact, maxRegress, maxSpeedupDrop float64) {
	gate := func(name string, old, new float64, direction int) {
		if old == 0 {
			fmt.Printf("note: %s absent from baseline, skipping\n", name)
			return
		}
		rel := (new - old) / old * float64(direction)
		if rel > maxRegress {
			failf("%s regressed %.0f%%: %v -> %v", name, rel*100, old, new)
			return
		}
		fmt.Printf("ok: %s %v -> %v (%+.0f%%)\n", name, old, new, (new-old)/old*100)
	}

	gate("total_solver_calls", float64(base.TotalSolverCalls), float64(fresh.TotalSolverCalls), +1)
	if base.EarlyUnsatStop != nil && fresh.EarlyUnsatStop != nil {
		gate("early_unsat_stop.solver_checks",
			float64(base.EarlyUnsatStop.SolverChecks), float64(fresh.EarlyUnsatStop.SolverChecks), +1)
	}
	if base.Oracle != nil && fresh.Oracle != nil {
		gate("oracle.pairs", float64(base.Oracle.Pairs), float64(fresh.Oracle.Pairs), -1)
	}
	if len(base.SummarySweep) > 0 && len(fresh.SummarySweep) > 0 {
		ob, nb := base.SummarySweep[len(base.SummarySweep)-1], fresh.SummarySweep[len(fresh.SummarySweep)-1]
		if ob.TraceOps == nb.TraceOps {
			gate("summary_sweep.summarized_walked", float64(ob.SummarizedWalked), float64(nb.SummarizedWalked), +1)
			gate("summary_sweep.slice_edges", float64(ob.SliceEdges), float64(nb.SliceEdges), +1)
		} else {
			fmt.Printf("note: sweep trace sizes differ (%d vs %d ops), skipping walked-edge comparison\n",
				ob.TraceOps, nb.TraceOps)
		}
	}

	// Wall-time metrics: only meaningful on the same machine class,
	// and — because identical fingerprints can still mean VM instances
	// with different effective clock speeds — only when both artifacts
	// carry a CPU calibration to normalize by. The fresh artifact's
	// timings are divided by the calibration ratio before gating, so a
	// uniformly slower machine does not read as a code regression.
	if base.Host == "" || base.Host != fresh.Host {
		fmt.Printf("note: host fingerprints differ (%q vs %q), skipping wall-time comparisons\n",
			base.Host, fresh.Host)
		return
	}
	if base.CalibrationMS == 0 || fresh.CalibrationMS == 0 {
		fmt.Printf("note: missing CPU calibration (%.1f vs %.1f), skipping wall-time comparisons\n",
			base.CalibrationMS, fresh.CalibrationMS)
		return
	}
	speed := base.CalibrationMS / fresh.CalibrationMS // <1: machine now slower
	fmt.Printf("calibration %.1fms -> %.1fms: normalizing fresh wall times by %.2fx\n",
		base.CalibrationMS, fresh.CalibrationMS, speed)
	wall := func(name string, old, new float64) { gate(name, old, new*speed, +1) }

	wall("suite_wall_ms", base.SuiteWallMS, fresh.SuiteWallMS)
	if base.EarlyUnsatStop != nil && fresh.EarlyUnsatStop != nil {
		wall("early_unsat_stop.incremental_ms",
			base.EarlyUnsatStop.IncrementalMS, fresh.EarlyUnsatStop.IncrementalMS)
		// The speedup ratio is the headline the incremental solver was
		// built for, and a slide that stays inside the generic window
		// (8.0x -> 6.6x is -17%) is still a real regression — so it
		// gets its own tighter threshold. The ratio is measured within
		// one run and is therefore self-normalizing; it sits in the
		// calibrated same-host section only so both sides' timing
		// loops ran under comparable schedulers.
		if ov, nv := base.EarlyUnsatStop.Speedup, fresh.EarlyUnsatStop.Speedup; ov > 0 && nv > 0 {
			if drop := (ov - nv) / ov; drop > maxSpeedupDrop {
				failf("early_unsat_stop.speedup dropped %.0f%%: %.2fx -> %.2fx (allowed %.0f%%)",
					drop*100, ov, nv, maxSpeedupDrop*100)
			} else {
				fmt.Printf("ok: early_unsat_stop.speedup %.2fx -> %.2fx (%+.0f%%)\n", ov, nv, -drop*100)
			}
		}
	}
	if len(base.SummarySweep) > 0 && len(fresh.SummarySweep) > 0 {
		ob, nb := base.SummarySweep[len(base.SummarySweep)-1], fresh.SummarySweep[len(fresh.SummarySweep)-1]
		if ob.TraceOps == nb.TraceOps {
			wall("summary_sweep.summarized_ms", ob.SummarizedMS, nb.SummarizedMS)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
