// Command slicerd is the resident slice/verify daemon: a JSON HTTP
// service that runs many slice and CEGAR-check sessions concurrently
// over shared long-lived state — the compiled-program LRU, per-program
// frame summaries and abstract-post memos, one shared solver-verdict
// cache, and the epoch-collected hash-cons interner (docs/API.md,
// docs/DEPLOYMENT.md).
//
// Usage:
//
//	slicerd [-addr a] [-admin-addr a] [-max-inflight n]
//	        [-default-deadline d] [-max-deadline d] [-max-programs n]
//	        [-cache-size n] [-solver-workers n] [-intern-keep n]
//	        [-gc-every d] [-max-source-bytes n] [-max-body-bytes n]
//	        [-drain-timeout d] [-snapshot-path f] [-snapshot-every d]
//	        [-tls-cert f -tls-key f] [-auth-token t]
//	        [-fault-* ...] [-trace-out f]
//
// The API port serves POST /v1/slice, POST /v1/check, GET /v1/healthz
// and GET /v1/stats. The admin port serves the obs surface — /metrics
// (Prometheus), /debug/vars (expvar) and /debug/pprof — so operational
// endpoints are never exposed on the API address.
//
// Robustness (docs/ROBUSTNESS.md): at most -max-inflight sessions run
// at once; excess traffic is shed with a typed 503 "undecided" body,
// and every request runs under a deadline. Overload and expiry degrade
// — they never flip a verdict. -fault-* installs the deterministic
// fault injector (the serve-smoke harness uses it to force overload).
//
// Crash safety (docs/DEPLOYMENT.md): SIGTERM/SIGINT triggers a
// graceful drain — healthz flips to 503 "draining", new sessions get
// the typed 503, in-flight sessions finish (up to -drain-timeout, then
// they are force-degraded soundly) — and, with -snapshot-path set, the
// warm state is saved on the way out and restored on the next boot.
// -snapshot-every adds a periodic save so even a SIGKILL loses at most
// one interval of warm-up.
//
// Security: -tls-cert/-tls-key serve the API over TLS; -auth-token
// requires `Authorization: Bearer <token>` on every endpoint except
// /v1/healthz.
//
// Exit codes: 0 clean shutdown, 1 internal error, 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathslice/internal/faults"
	"pathslice/internal/obs"
	"pathslice/internal/service"
)

const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8080", "API listen address (POST /v1/slice, /v1/check; GET /v1/healthz, /v1/stats)")
	adminAddr := flag.String("admin-addr", "127.0.0.1:9090", "admin listen address for /metrics, /debug/vars, /debug/pprof (\"\" disables)")
	maxInflight := flag.Int("max-inflight", 8, "maximum concurrently admitted sessions; excess requests get a typed 503")
	defaultDeadline := flag.Duration("default-deadline", 30*time.Second, "deadline for requests that set no deadline_ms")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "upper clamp on requested deadlines")
	maxPrograms := flag.Int("max-programs", 64, "program-state LRU capacity (compiled CFAs, summaries, checker memos)")
	cacheSize := flag.Int("cache-size", 0, "shared solver verdict cache capacity (0 = default)")
	solverWorkers := flag.Int("solver-workers", 4, "upper clamp on per-request solver_workers")
	portfolio := flag.Bool("portfolio", true, "default for requests that omit \"portfolio\": race solver strategies per query (docs/PERFORMANCE.md)")
	internKeep := flag.Int("intern-keep", 4, "interner GC retention window in epochs")
	gcEvery := flag.Duration("gc-every", time.Minute, "interner GC epoch cadence (0 disables the loop)")
	maxSourceBytes := flag.Int64("max-source-bytes", 1<<20, "maximum uploaded program size in bytes")
	maxBodyBytes := flag.Int64("max-body-bytes", 16<<20, "maximum request body size in bytes (traces included)")
	traceOut := flag.String("trace-out", "", "write a JSONL trace event log to this file (\"-\" for stderr)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a SIGTERM drain waits for in-flight sessions before force-degrading them")
	snapshotPath := flag.String("snapshot-path", "", "warm-state snapshot file: restored on boot, saved on drain (\"\" disables)")
	snapshotEvery := flag.Duration("snapshot-every", 0, "periodic snapshot-save cadence (0 = save only on drain)")
	tlsCert := flag.String("tls-cert", "", "serve the API over TLS with this certificate file (requires -tls-key)")
	tlsKey := flag.String("tls-key", "", "TLS private key file (requires -tls-cert)")
	authToken := flag.String("auth-token", "", "require `Authorization: Bearer <token>` on every endpoint except /v1/healthz")
	faultCfg := faults.FlagConfig(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: slicerd [flags]")
		flag.Usage()
		return exitUsage
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		fmt.Fprintln(os.Stderr, "slicerd: -tls-cert and -tls-key must be set together")
		return exitUsage
	}

	if cfg := faultCfg(); cfg != nil {
		faults.Install(faults.New(*cfg))
		fmt.Fprintln(os.Stderr, "slicerd: fault injection enabled")
	}

	cleanup, err := obs.Setup(*traceOut, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicerd:", err)
		return exitUsage
	}
	defer func() { _ = cleanup() }()

	srv := service.New(service.Config{
		MaxInflight:      *maxInflight,
		DefaultDeadline:  *defaultDeadline,
		MaxDeadline:      *maxDeadline,
		MaxSourceBytes:   *maxSourceBytes,
		MaxBodyBytes:     *maxBodyBytes,
		MaxPrograms:      *maxPrograms,
		SolverCacheSize:  *cacheSize,
		MaxSolverWorkers: *solverWorkers,
		DisablePortfolio: !*portfolio,
		InternKeepEpochs: *internKeep,
		GCInterval:       *gcEvery,
		SnapshotPath:     *snapshotPath,
		SnapshotInterval: *snapshotEvery,
		AuthToken:        *authToken,
	})
	defer srv.Close()
	if *snapshotPath != "" {
		if st := srv.Stats().Snapshot; st != nil && st.RestoredPrograms+st.RestoredVerdicts > 0 {
			fmt.Fprintf(os.Stderr, "slicerd: snapshot restored %d programs, %d summaries, %d verdicts (%d records dropped)\n",
				st.RestoredPrograms, st.RestoredSummaries, st.RestoredVerdicts, st.DroppedRecords)
		}
	}

	if *adminAddr != "" {
		bound, stopAdmin, err := obs.Serve(*adminAddr, obs.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "slicerd:", err)
			return exitInternal
		}
		defer func() { _ = stopAdmin() }()
		fmt.Printf("slicerd: admin http://%s\n", bound)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicerd:", err)
		return exitInternal
	}
	// The bound address goes to stdout so harnesses that listen on
	// ":0" (cmd/servesmoke, cmd/chaossmoke, the tests) can find the
	// port.
	scheme := "http"
	if *tlsCert != "" {
		scheme = "https"
	}
	fmt.Printf("slicerd: api %s://%s\n", scheme, ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		if *tlsCert != "" {
			errc <- httpSrv.ServeTLS(ln, *tlsCert, *tlsKey)
			return
		}
		errc <- httpSrv.Serve(ln)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "slicerd: %s, draining\n", got)
		// Graceful drain (docs/DEPLOYMENT.md): stop admitting (typed
		// 503s, healthz flips to "draining"), let in-flight sessions
		// finish up to -drain-timeout, then force-degrade stragglers —
		// they answer soundly weakened, never wrong. Only after the
		// sessions settle is the warm state snapshotted and the
		// listener shut down.
		clean := srv.Drain(*drainTimeout)
		if !clean {
			fmt.Fprintln(os.Stderr, "slicerd: drain timeout, stragglers force-degraded")
		}
		if *snapshotPath != "" {
			if err := srv.SaveSnapshot(*snapshotPath); err != nil {
				fmt.Fprintln(os.Stderr, "slicerd: snapshot save:", err)
			} else {
				fmt.Fprintln(os.Stderr, "slicerd: warm state snapshotted to", *snapshotPath)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			_ = httpSrv.Close()
		}
		return exitOK
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "slicerd:", err)
			return exitInternal
		}
		return exitOK
	}
}
