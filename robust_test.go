package pathslice

// Metamorphic robustness tests (docs/ROBUSTNESS.md): under injected
// faults — solver Unknowns, hung solver calls, worker panics, deadline
// expiry — the pipeline must degrade soundly. Concretely: a slice
// computed under faults is a superset of the fault-free slice, a CEGAR
// verdict under faults only weakens (never flips Safe <-> Unsafe), and
// a hung solver never holds a deadlined check hostage.
//
// These tests install the process-global fault injector, so none of
// them may use t.Parallel.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pathslice/internal/cegar"
	"pathslice/internal/cfa"
	"pathslice/internal/compile"
	"pathslice/internal/core"
	"pathslice/internal/faults"
	"pathslice/internal/oracle"
)

func loadProgram(t *testing.T, file string) *cfa.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.Source(string(src))
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	return prog
}

// candidatePaths returns one candidate path per error location of the
// program, the way cmd/pathslice finds them.
func candidatePaths(t *testing.T, prog *cfa.Program) []cfa.Path {
	t.Helper()
	var paths []cfa.Path
	for _, target := range prog.ErrorLocs() {
		if p := cfa.FindPath(prog, target, cfa.FindOptions{}); p != nil {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		t.Fatal("no candidate paths found")
	}
	return paths
}

// assertSuperset fails unless every edge taken by the baseline slice is
// also taken by the degraded one.
func assertSuperset(t *testing.T, label string, baseline, degraded *core.Result) {
	t.Helper()
	if len(baseline.Taken) != len(degraded.Taken) {
		t.Fatalf("%s: Taken length mismatch: %d vs %d", label, len(baseline.Taken), len(degraded.Taken))
	}
	for i, tk := range baseline.Taken {
		if tk && !degraded.Taken[i] {
			t.Fatalf("%s: edge %d in the fault-free slice but dropped under faults — not a superset", label, i)
		}
	}
}

// TestMetamorphicSliceSupersetUnderInjectedUnknowns: with solver
// Unknowns injected at >= 20%, the early-unsat-stop optimization loses
// proofs and the slicer must conservatively keep scanning — so for
// every program, path, and seed, the faulted slice contains every edge
// of the fault-free slice.
func TestMetamorphicSliceSupersetUnderInjectedUnknowns(t *testing.T) {
	injectedTotal := int64(0)
	for _, file := range []string{"ex2.mc", "safe.mc", "overdraft.mc"} {
		prog := loadProgram(t, file)
		slicer := core.NewWithOptions(prog, core.Options{EarlyUnsatStop: true})
		for pi, path := range candidatePaths(t, prog) {
			baseline, err := slicer.Slice(path)
			if err != nil {
				t.Fatalf("%s path %d: fault-free slice failed: %v", file, pi, err)
			}
			for seed := int64(1); seed <= 5; seed++ {
				in := faults.New(faults.Config{
					Seed:  seed,
					Rates: map[faults.Kind]float64{faults.SolverUnknown: 0.25},
				})
				prev := faults.Install(in)
				faulted, err := slicer.Slice(path)
				faults.Install(prev)
				if err != nil {
					t.Fatalf("%s path %d seed %d: faulted slice failed: %v", file, pi, seed, err)
				}
				assertSuperset(t, file, baseline, faulted)
				injectedTotal += in.Injected(faults.SolverUnknown)
			}
		}
	}
	if injectedTotal == 0 {
		t.Fatal("no solver-unknown faults fired at a 25% injection rate — the property was not exercised")
	}
}

// TestMetamorphicDegradedSliceIsSuperset: an expired deadline makes the
// slicer fall back to taking every remaining edge — the result must be
// flagged Degraded and be a superset of the fault-free slice.
func TestMetamorphicDegradedSliceIsSuperset(t *testing.T) {
	prog := loadProgram(t, "ex2.mc")
	slicer := core.New(prog)
	for pi, path := range candidatePaths(t, prog) {
		baseline, err := slicer.Slice(path)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		degraded, err := slicer.SliceCtx(ctx, path)
		if err != nil {
			t.Fatalf("path %d: degraded slice must still be produced, got error %v", pi, err)
		}
		if !degraded.Degraded {
			t.Fatalf("path %d: cancelled context did not set Degraded", pi)
		}
		assertSuperset(t, "ex2.mc (cancelled ctx)", baseline, degraded)
	}
}

// TestMetamorphicStreamedDegradedSliceIsSuperset: the PR3 degradation
// contract extends to the streaming reader (cfa.PathReader). A context
// cancelled before or during SliceStream must still yield a result —
// Degraded, and a superset of the fault-free slice — never an error or
// a panic; and a trace file that fails validation surfaces as a typed
// *cfa.TraceFormatError at open, so callers can distinguish corrupt
// input from analysis failure.
func TestMetamorphicStreamedDegradedSliceIsSuperset(t *testing.T) {
	prog := loadProgram(t, "ex2.mc")
	slicer := core.New(prog)
	dir := t.TempDir()
	for pi, path := range candidatePaths(t, prog) {
		baseline, err := slicer.Slice(path)
		if err != nil {
			t.Fatal(err)
		}
		file := filepath.Join(dir, fmt.Sprintf("p%d.pstrc", pi))
		if err := cfa.WriteTraceFile(file, prog, path); err != nil {
			t.Fatal(err)
		}

		// Pre-cancelled: deterministically degrades at the first step.
		r, err := cfa.OpenTraceFile(file, prog)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		degraded, err := slicer.SliceStream(ctx, r)
		r.Close()
		if err != nil {
			t.Fatalf("path %d: cancelled stream must still produce a slice, got %v", pi, err)
		}
		if !degraded.Degraded {
			t.Fatalf("path %d: cancelled context did not set Degraded on the streamed slice", pi)
		}
		assertSuperset(t, "ex2.mc (streamed, cancelled ctx)", baseline, degraded)

		// Cancelled concurrently: wherever the cancellation lands in the
		// backward scan, the result must come back error-free and be a
		// superset; Degraded is set only if it landed before the end.
		r, err = cfa.OpenTraceFile(file, prog)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel = context.WithCancel(context.Background())
		go cancel()
		mid, err := slicer.SliceStream(ctx, r)
		r.Close()
		if err != nil {
			t.Fatalf("path %d: mid-stream cancellation must degrade, not fail: %v", pi, err)
		}
		assertSuperset(t, "ex2.mc (streamed, mid-stream cancel)", baseline, mid)
	}

	// Corrupt input is a typed format error, not a degraded analysis.
	bad := filepath.Join(dir, "p0.pstrc")
	buf, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, buf[:len(buf)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	var ferr *cfa.TraceFormatError
	if _, err := cfa.OpenTraceFile(bad, prog); !errors.As(err, &ferr) {
		t.Fatalf("truncated trace file: want *cfa.TraceFormatError, got %v", err)
	}
}

// TestOracleContractHoldsForDegradedSlices: a Degraded slice (deadline
// expired mid-scan, slicer fell back to keeping every remaining edge)
// is still a slice, so the full Theorem-1 replay oracle must accept it
// with zero violations — degradation weakens minimality, never
// soundness or completeness.
func TestOracleContractHoldsForDegradedSlices(t *testing.T) {
	for _, file := range []string{"ex2.mc", "safe.mc", "overdraft.mc"} {
		prog := loadProgram(t, file)
		slicer := core.New(prog)
		degradedSeen := false
		for pi, path := range candidatePaths(t, prog) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err := slicer.SliceCtx(ctx, path)
			if err != nil {
				t.Fatalf("%s path %d: degraded slice must still be produced, got %v", file, pi, err)
			}
			if res.Degraded {
				degradedSeen = true
			}
			rep := oracle.CheckResult(prog, path, res, core.Options{},
				oracle.CheckOptions{ReachCheck: true})
			for _, v := range rep.Violations {
				t.Errorf("%s path %d: degraded slice breaks the contract: %s", file, pi, v)
			}
		}
		if !degradedSeen {
			t.Errorf("%s: cancelled context never produced a Degraded result — property not exercised", file)
		}
	}
}

// TestOracleContractHoldsUnderInjectedUnknowns: with solver Unknowns
// injected under the early-unsat-stop slicer, lost proofs may make the
// oracle inconclusive but must never make it report a violation — the
// conservative slice stays sound, and the oracle's own undecidable
// checks degrade to "inconclusive", not to noise.
func TestOracleContractHoldsUnderInjectedUnknowns(t *testing.T) {
	sopts := core.Options{EarlyUnsatStop: true, CheckEvery: 1}
	copts := oracle.CheckOptions{ReachCheck: true}
	injectedTotal := int64(0)
	for _, file := range []string{"ex2.mc", "safe.mc", "overdraft.mc"} {
		prog := loadProgram(t, file)
		for pi, path := range candidatePaths(t, prog) {
			for seed := int64(1); seed <= 3; seed++ {
				in := faults.New(faults.Config{
					Seed:  seed,
					Rates: map[faults.Kind]float64{faults.SolverUnknown: 0.25},
				})
				prev := faults.Install(in)
				rep := oracle.CheckTrace(prog, path, sopts, copts)
				faults.Install(prev)
				for _, v := range rep.Violations {
					t.Errorf("%s path %d seed %d: faulted run reported a violation: %s", file, pi, seed, v)
				}
				injectedTotal += in.Injected(faults.SolverUnknown)
			}
		}
	}
	if injectedTotal == 0 {
		t.Fatal("no solver-unknown faults fired at a 25% injection rate — the property was not exercised")
	}
}

// checkAll runs one CEGAR check per error location and returns the
// verdicts in location order.
func checkAll(t *testing.T, prog *cfa.Program, opts cegar.Options) []cegar.Verdict {
	t.Helper()
	checker := cegar.New(prog, opts)
	var verdicts []cegar.Verdict
	for _, target := range prog.ErrorLocs() {
		r := checker.Check(target)
		if r.Err != nil {
			t.Logf("%s: contained error: %v", target, r.Err)
		}
		verdicts = append(verdicts, r.Verdict)
	}
	return verdicts
}

// TestMetamorphicVerdictWeakeningUnderInjectedUnknowns: with >= 20% of
// solver calls forced to Unknown, a check may lose its answer (Unknown
// or Timeout) but must never flip it — whenever the faulted run still
// decides, it decides the same way as the fault-free run.
func TestMetamorphicVerdictWeakeningUnderInjectedUnknowns(t *testing.T) {
	opts := cegar.Options{UseSlicing: true, MaxWork: 60000}
	injectedTotal, drawsTotal := int64(0), int64(0)
	for _, file := range []string{"safe.mc", "overdraft.mc"} {
		prog := loadProgram(t, file)
		baseline := checkAll(t, prog, opts)
		for i, v := range baseline {
			if !v.Decided() {
				t.Fatalf("%s check %d: fault-free baseline is undecided (%v)", file, i, v)
			}
		}
		for seed := int64(1); seed <= 4; seed++ {
			in := faults.New(faults.Config{
				Seed:  seed,
				Rates: map[faults.Kind]float64{faults.SolverUnknown: 0.25},
			})
			prev := faults.Install(in)
			faulted := checkAll(t, prog, opts)
			faults.Install(prev)
			injectedTotal += in.Injected(faults.SolverUnknown)
			drawsTotal += in.Draws(faults.SolverUnknown)
			for i, v := range faulted {
				if v.Decided() && v != baseline[i] {
					t.Fatalf("%s check %d seed %d: verdict flipped %v -> %v under injected Unknowns",
						file, i, seed, baseline[i], v)
				}
			}
		}
	}
	if injectedTotal == 0 {
		t.Fatal("no solver-unknown faults fired — the property was not exercised")
	}
	// The acceptance bar is >= 20% injected Unknowns: with the rate at
	// 0.25 and this many draws the observed fraction must clear it.
	if frac := float64(injectedTotal) / float64(drawsTotal); drawsTotal >= 100 && frac < 0.20 {
		t.Fatalf("observed injection fraction %.3f (%d/%d draws) below the 20%% bar",
			frac, injectedTotal, drawsTotal)
	}
}

// TestMetamorphicHungSolverReturnsWithinDeadline: every solver call
// stalls for 30s, the per-check deadline is 150ms — the check must come
// back within deadline + scheduling slack, undecided, and certainly not
// with a fabricated Safe or Unsafe.
func TestMetamorphicHungSolverReturnsWithinDeadline(t *testing.T) {
	prev := faults.Install(faults.New(faults.Config{
		Seed:  7,
		Rates: map[faults.Kind]float64{faults.SolverStall: 1},
		Stall: 30 * time.Second,
	}))
	defer faults.Install(prev)

	prog := loadProgram(t, "safe.mc")
	const deadline = 150 * time.Millisecond
	checker := cegar.New(prog, cegar.Options{UseSlicing: true, MaxWork: 60000, Deadline: deadline})
	for _, target := range prog.ErrorLocs() {
		start := time.Now()
		r := checker.Check(target)
		elapsed := time.Since(start)
		if elapsed > deadline+3*time.Second {
			t.Fatalf("%s: hung-solver check took %v, want <= deadline (%v) + slack", target, elapsed, deadline)
		}
		if r.Verdict.Decided() {
			t.Fatalf("%s: every solver call stalled past the deadline yet the check decided %v", target, r.Verdict)
		}
	}
}

// TestMetamorphicWorkerPanicContainment: with panics injected into the
// parallel per-predicate solver workers, the pool must contain them
// (the check completes, the process survives) and the verdict may only
// weaken relative to the fault-free run.
func TestMetamorphicWorkerPanicContainment(t *testing.T) {
	opts := cegar.Options{UseSlicing: true, MaxWork: 60000, SolverWorkers: 4}
	injectedTotal := int64(0)
	for _, file := range []string{"safe.mc", "overdraft.mc"} {
		prog := loadProgram(t, file)
		baseline := checkAll(t, prog, opts)
		for seed := int64(1); seed <= 3; seed++ {
			in := faults.New(faults.Config{
				Seed:  seed,
				Rates: map[faults.Kind]float64{faults.WorkerPanic: 0.3},
			})
			prev := faults.Install(in)
			faulted := checkAll(t, prog, opts)
			faults.Install(prev)
			injectedTotal += in.Injected(faults.WorkerPanic)
			for i, v := range faulted {
				if v.Decided() && baseline[i].Decided() && v != baseline[i] {
					t.Fatalf("%s check %d seed %d: verdict flipped %v -> %v under injected worker panics",
						file, i, seed, baseline[i], v)
				}
			}
		}
	}
	if injectedTotal == 0 {
		t.Fatal("no worker panics fired at a 30% injection rate — the containment path was not exercised")
	}
}
