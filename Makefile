# Tier-1 gate: everything a PR must keep green. `make check` is the
# canonical pre-merge command (build, vet, full tests, and the race
# detector over the packages that share state across goroutines —
# the CEGAR worker pool, the solver cache, and the dataflow query
# caches behind a shared Slicer).

GO ?= go

RACE_PKGS = ./internal/cegar/ ./internal/core/ ./internal/dataflow/ ./internal/smt/

.PHONY: check build vet test race bench experiments

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments
