# Tier-1 gate: everything a PR must keep green. `make check` is the
# canonical pre-merge command (build, vet, full tests, the race
# detector over the packages that share state across goroutines —
# the CEGAR worker pool, the solver cache, the dataflow query
# caches behind a shared Slicer, and the obs metrics/trace layer —
# and the docs checker).

GO ?= go

RACE_PKGS = ./internal/cegar/ ./internal/cfa/ ./internal/client/ ./internal/core/ ./internal/dataflow/ ./internal/faults/ ./internal/interp/ ./internal/logic/ ./internal/obs/ ./internal/oracle/ ./internal/service/ ./internal/smt/

.PHONY: check build vet test race fuzz oracle docs-check serve-smoke chaos-smoke bench bench-json bench-diff farm experiments

check: build vet test race fuzz oracle docs-check serve-smoke chaos-smoke bench-diff farm

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Short native-fuzzing smoke over the byte-input boundaries (the MiniC
# parser — sequential and threaded grammars — the smt linearizer, and
# the PSTRC02 concurrent-trace decoder); `make FUZZTIME=5m fuzz` digs
# deeper.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/lang/parser/ -run '^$$' -fuzz 'FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lang/parser/ -run '^$$' -fuzz FuzzParseThreads -fuzztime $(FUZZTIME)
	$(GO) test ./internal/smt/ -run '^$$' -fuzz FuzzLinearize -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cfa/ -run '^$$' -fuzz FuzzConcurrentTrace -fuzztime $(FUZZTIME)

# Differential/metamorphic oracle campaign over generated programs
# (docs/TESTING.md): >=500 slicer verdicts cross-checked against the
# concrete interpreter, a brute-force reference slicer, and a stateless
# solver, plus the planted-bug self-test. Deterministic, ~1s.
oracle:
	$(GO) test -run Oracle -count=1 .

# Fails on broken relative links in *.md and on `pkg.Ident` doc
# references that no longer name an exported identifier.
docs-check:
	$(GO) run ./cmd/doccheck

# End-to-end smoke of the slicerd daemon (docs/DEPLOYMENT.md): builds
# and launches the real binary with a tiny admission limit and a 100%
# solver-stall fault rate, bursts past the limit, and asserts the
# typed load-shed contract plus the slicerd_* series on /metrics.
serve-smoke:
	@mkdir -p bin
	$(GO) build -o bin/slicerd ./cmd/slicerd
	$(GO) run ./cmd/servesmoke -slicerd bin/slicerd

# Network-level chaos campaign (docs/ROBUSTNESS.md): a real slicerd
# behind the deterministic faulty proxy (connection resets, stalls,
# partial writes, byte corruption), driven by the retrying client
# through SIGTERM drains, SIGKILL crashes, and a deliberately corrupted
# snapshot. Asserts zero wrong verdicts and eventual success.
chaos-smoke:
	@mkdir -p bin
	$(GO) build -o bin/slicerd ./cmd/slicerd
	$(GO) run ./cmd/chaossmoke -slicerd bin/slicerd

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable performance artifact (suite wall time, solver-call
# counts, early-unsat-stop speedup, the gcc-class summary sweep, oracle
# corpus statistics). Not part of `make check` — it records numbers;
# `make bench-diff` gates on them.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR10.json

# Gate: compares the two newest checked-in BENCH_PR*.json artifacts and
# fails on a >20% regression of any deterministic metric (wall times
# only when the host fingerprints match), and on the summary sweep
# losing its sublinear walked-edge curve. Part of `make check`.
bench-diff:
	$(GO) run ./cmd/benchdiff

# Time-budgeted verification farm (docs/PERFORMANCE.md): a planted-
# regression benchdiff self-test, then iterations of the oracle
# campaign with the portfolio front-end on and both fuzz targets; with
# a budget past ~90s each loop also regenerates BENCH_PR10.json in a
# scratch workspace and benchdiff-gates it against the committed
# baseline. `make farm FARMTIME=30m` for a soak; the default short
# burst is part of `make check`.
FARMTIME ?= 60s
farm:
	$(GO) run ./cmd/farm -time $(FARMTIME)

experiments:
	$(GO) run ./cmd/experiments
