package pathslice

// Tier-1 oracle gate (docs/TESTING.md): a full campaign of generated
// program/trace pairs must pass the Theorem-1 contract checks with
// zero violations, and a deliberately broken slicer must be caught
// within the same budget. `make oracle` runs exactly these tests;
// `make check` includes them via `make test`.

import (
	"testing"
	"time"

	"pathslice/internal/core"
	"pathslice/internal/oracle"
)

// oracleConfig is the shared campaign shape: the checked-in regression
// corpus first, then generated + mutated specs, 30s ceiling (the run
// finishes in well under a second; the budget only guards slow hosts).
func oracleConfig() oracle.Config {
	return oracle.Config{
		Seeds:     140,
		Budget:    30 * time.Second,
		Seed:      1,
		CorpusDir: "testdata/oracle",
	}
}

// TestOracleCampaign is the acceptance bar: at least 500 slicer
// verdicts cross-checked per run, none of them violating soundness,
// completeness, differential agreement, brute-force sufficiency, or a
// metamorphic invariant.
func TestOracleCampaign(t *testing.T) {
	stats := oracle.Run(oracleConfig())
	for _, v := range stats.Violations {
		t.Errorf("violation: %s", v)
	}
	if stats.Pairs < 500 {
		t.Errorf("campaign produced only %d pairs, want >= 500", stats.Pairs)
	}
	if stats.Inconclusive > stats.Pairs/10 {
		t.Errorf("%d of %d pairs inconclusive — oracle losing decisiveness", stats.Inconclusive, stats.Pairs)
	}
	t.Log(stats.Summary())
}

// TestOracleCampaignPortfolio re-proves the Theorem-1 contract with
// every slicer feasibility check and CEGAR entailment routed through
// the smt portfolio front-end (strategy racing + batched entailments).
// The campaign's cross-check references stay stateless, so a verdict
// produced by a cancelled-too-late or misraced strategy would surface
// here as a violation.
func TestOracleCampaignPortfolio(t *testing.T) {
	cfg := oracleConfig()
	cfg.Seeds = 80
	cfg.Portfolio = true
	stats := oracle.Run(cfg)
	for _, v := range stats.Violations {
		t.Errorf("violation: %s", v)
	}
	if stats.Pairs < 200 {
		t.Errorf("campaign produced only %d pairs, want >= 200", stats.Pairs)
	}
	t.Log(stats.Summary())
}

// TestOracleCatchesPlantedBugs proves the gate has teeth: each
// deliberately unsound Take-rule mode must produce at least one
// violation inside the default campaign budget.
func TestOracleCatchesPlantedBugs(t *testing.T) {
	for _, mode := range []core.UnsoundMode{
		core.UnsoundDropGuards,
		core.UnsoundDropAliasedWrites,
		core.UnsoundSkipCallees,
	} {
		cfg := oracleConfig()
		cfg.Seeds = 40
		cfg.Unsound = mode
		stats := oracle.Run(cfg)
		if len(stats.Violations) == 0 {
			t.Errorf("unsound mode %d survived the campaign: %s", mode, stats.Summary())
		}
	}
}

// TestSummaryDifferentialGate is the PR6 acceptance bar for the frame
// summaries: a fresh call-heavy campaign of at least 200 pairs — the
// checked-in corpus and the starter specs included, since they ride at
// the head of the queue — where every pair is additionally sliced with
// summaries on and compared bit-for-bit against the plain walk. Zero
// divergences allowed.
func TestSummaryDifferentialGate(t *testing.T) {
	cfg := oracleConfig()
	cfg.Seeds = 80
	cfg.Summaries = true
	cfg.CallHeavy = true
	stats := oracle.Run(cfg)
	for _, v := range stats.Violations {
		t.Errorf("violation: %s", v)
	}
	if stats.Pairs < 200 {
		t.Errorf("campaign produced only %d pairs, want >= 200", stats.Pairs)
	}
	t.Log(stats.Summary())
}

// TestSummaryStalePlantedBugCaught: reusing a frame summary across
// differing live contexts (the one unsound shortcut the summary key
// exists to prevent) must be caught by the summary-differential
// pillar within a small campaign.
func TestSummaryStalePlantedBugCaught(t *testing.T) {
	cfg := oracleConfig()
	cfg.Seeds = 40
	cfg.Summaries = true
	cfg.CallHeavy = true
	cfg.Unsound = core.UnsoundStaleSummaries
	stats := oracle.Run(cfg)
	if len(stats.Violations) == 0 {
		t.Fatalf("stale summary reuse survived the campaign: %s", stats.Summary())
	}
	for _, v := range stats.Violations {
		if v.Kind != "summ-diff" {
			t.Errorf("unexpected violation kind %q (stale reuse must only surface as summ-diff): %s", v.Kind, v)
		}
	}
	t.Logf("caught: %d violations, e.g. %s", len(stats.Violations), stats.Violations[0])
}

// TestOracleConcCampaign is the PR10 acceptance bar: at least 300
// multi-threaded program/trace pairs judged by the extended oracle —
// recorded-interleaving solver cross-checks, model replay, the
// interleaving-closure reordering pillar, and the commute metamorphic
// invariant — with zero soundness violations.
func TestOracleConcCampaign(t *testing.T) {
	stats := oracle.RunConc(oracle.ConcConfig{
		Pairs:  300,
		Budget: 120 * time.Second,
		Seed:   1,
	})
	for _, v := range stats.Violations {
		t.Errorf("violation: %s", v)
	}
	if stats.Pairs < 300 {
		t.Errorf("campaign judged only %d pairs, want >= 300", stats.Pairs)
	}
	if stats.Inconclusive > stats.Pairs/10 {
		t.Errorf("%d of %d pairs inconclusive — oracle losing decisiveness", stats.Inconclusive, stats.Pairs)
	}
	if stats.Reorderings == 0 || stats.CommutePairs == 0 {
		t.Errorf("concurrent pillars inert: %d reorderings, %d commute pairs",
			stats.Reorderings, stats.CommutePairs)
	}
	t.Log(stats.Summary())
}

// TestOracleConcCatchesPlantedBugs proves the concurrent gate has
// teeth: each deliberately broken cross-thread walk — dropping the
// racy-edge transfers outright, or reusing a stale snapshot of another
// thread's live set — must produce at least one violation inside the
// campaign budget.
func TestOracleConcCatchesPlantedBugs(t *testing.T) {
	for _, mode := range []core.UnsoundMode{
		core.UnsoundDropRacyEdges,
		core.UnsoundStaleThreadLiveSet,
	} {
		stats := oracle.RunConc(oracle.ConcConfig{
			Pairs:   80,
			Budget:  60 * time.Second,
			Seed:    1,
			Unsound: mode,
		})
		if len(stats.Violations) == 0 {
			t.Errorf("unsound mode %d survived the campaign: %s", mode, stats.Summary())
		}
	}
}
