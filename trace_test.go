package pathslice

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathslice/internal/cegar"
	"pathslice/internal/compile"
	"pathslice/internal/obs"
)

// traceSchema lists, per event kind, which fields are required and
// which are allowed — the JSONL contract documented in
// docs/OBSERVABILITY.md. Every line a run emits must validate.
var traceSchema = map[string]struct{ required, allowed []string }{
	"start":   {required: []string{"t", "at_us"}, allowed: []string{"t", "at_us"}},
	"span":    {required: []string{"t", "phase", "name", "at_us"}, allowed: []string{"t", "phase", "name", "at_us", "dur_us", "attrs"}},
	"event":   {required: []string{"t", "name", "at_us"}, allowed: []string{"t", "name", "at_us", "attrs"}},
	"counter": {required: []string{"t", "name", "at_us", "value"}, allowed: []string{"t", "name", "at_us", "value"}},
	"phases":  {required: []string{"t", "at_us", "phases"}, allowed: []string{"t", "at_us", "phases", "attrs"}},
}

func validateTraceLine(line string) error {
	var ev map[string]any
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		return fmt.Errorf("not JSON: %v", err)
	}
	kind, _ := ev["t"].(string)
	schema, ok := traceSchema[kind]
	if !ok {
		return fmt.Errorf("unknown event kind %q", kind)
	}
	for _, f := range schema.required {
		if _, ok := ev[f]; !ok {
			return fmt.Errorf("%s event missing required field %q", kind, f)
		}
	}
	allowed := make(map[string]bool, len(schema.allowed))
	for _, f := range schema.allowed {
		allowed[f] = true
	}
	for f := range ev {
		if !allowed[f] {
			return fmt.Errorf("%s event has unexpected field %q", kind, f)
		}
	}
	if at, ok := ev["at_us"].(float64); !ok || at < 0 {
		return fmt.Errorf("%s event has bad at_us %v", kind, ev["at_us"])
	}
	return nil
}

// normalizeTrace reduces a JSONL log to its structural skeleton —
// event kinds, phases, and counter names, without timings — so runs
// on different machines compare equal.
func normalizeTrace(t *testing.T, raw []byte) []string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		switch kind := ev["t"].(string); kind {
		case "span":
			out = append(out, fmt.Sprintf("span %s", ev["phase"]))
		case "event", "counter":
			out = append(out, fmt.Sprintf("%s %s", kind, ev["name"]))
		default:
			out = append(out, kind)
		}
	}
	return out
}

// TestTraceJSONLGolden runs a small blastlite-equivalent check with a
// tracer attached and validates (a) every emitted line against the
// JSONL schema, (b) that the cegar_solver_calls counter matches the
// checker's Result exactly, and (c) the normalized event sequence
// against a golden file. Set UPDATE_GOLDEN=1 to regenerate.
func TestTraceJSONLGolden(t *testing.T) {
	src, err := os.ReadFile("testdata/safe.mc")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	prog, err := compile.Source(string(src))
	if err != nil {
		t.Fatal(err)
	}
	locs := prog.ErrorLocs()
	if len(locs) == 0 {
		t.Fatal("safe.mc has no error locations")
	}
	checker := cegar.New(prog, cegar.Options{UseSlicing: true})
	var solverCalls int64
	for _, target := range locs {
		r := checker.Check(target)
		if r.Verdict != cegar.VerdictSafe {
			t.Fatalf("%s: verdict %s, want safe", target, r.Verdict)
		}
		solverCalls += r.SolverCalls
	}
	obs.RecordCounter("cegar_solver_calls", solverCalls)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("trace too short (%d lines):\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		if err := validateTraceLine(line); err != nil {
			t.Errorf("schema violation: %v\n  line: %s", err, line)
		}
	}

	// The counter event and the closing summary must both carry the
	// exact solver-call total from the Results.
	var sawCounter, sawSummary bool
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		switch ev["t"] {
		case "counter":
			if ev["name"] == "cegar_solver_calls" {
				sawCounter = true
				if got := int64(ev["value"].(float64)); got != solverCalls {
					t.Errorf("counter event = %d, want %d", got, solverCalls)
				}
			}
		case "phases":
			sawSummary = true
			attrs, _ := ev["attrs"].(map[string]any)
			if got := int64(attrs["cegar_solver_calls"].(float64)); got != solverCalls {
				t.Errorf("summary counter = %d, want %d", got, solverCalls)
			}
		}
	}
	if !sawCounter || !sawSummary {
		t.Fatalf("missing counter (%v) or summary (%v) event", sawCounter, sawSummary)
	}

	// Golden comparison of the normalized event skeleton.
	got := strings.Join(normalizeTrace(t, buf.Bytes()), "\n") + "\n"
	golden := filepath.Join("testdata", "trace_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	if got != string(want) {
		t.Errorf("normalized trace differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
